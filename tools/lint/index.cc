#include "lint/index.h"

#include <algorithm>
#include <cstring>
#include <fstream>

namespace ddp_lint {

// --------------------------------------------------------------------------
// Original string-scan index (moved verbatim; R2/R3 depend on its exact
// behavior).
// --------------------------------------------------------------------------

void CollectSymbols(const SourceFile& f, SymbolInfo* info) {
  const std::string& code = f.code;
  for (const char* kw : {"unordered_map", "unordered_set"}) {
    for (size_t pos : FindWord(code, kw)) {
      // Skip "#include <unordered_map>" lines.
      size_t ls = f.line_starts[LineOfOffset(f, pos) - 1];
      size_t first = SkipSpace(code, ls);
      if (first < code.size() && code[first] == '#') continue;
      // "using Alias = [std::]unordered_map<...>" registers an alias.
      std::string_view before(code.data(), pos);
      size_t tail_start = before.size() > 64 ? before.size() - 64 : 0;
      std::string tail(before.substr(tail_start));
      size_t u = tail.rfind("using ");
      if (u != std::string::npos && tail.find('=', u) != std::string::npos &&
          tail.find(';', u) == std::string::npos) {
        size_t name_at = SkipSpace(tail, u + 6);
        std::string alias = ReadIdent(tail, name_at);
        if (!alias.empty()) info->unordered_aliases.insert(alias);
        continue;
      }
      size_t i = SkipSpace(code, pos + std::strlen(kw));
      if (i >= code.size() || code[i] != '<') continue;
      i = SkipAngles(code, i);
      if (i == std::string::npos) continue;
      i = SkipSpace(code, i);
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
        i = SkipSpace(code, i + 1);
      }
      std::string name = ReadIdent(code, i);
      if (name.empty()) continue;
      size_t j = SkipSpace(code, i + name.size());
      char c = j < code.size() ? code[j] : '\0';
      if (c == '(') {
        // Could be a function returning an unordered container or a variable
        // with constructor arguments; track it as both.
        info->unordered_funcs.insert(name);
        info->unordered_vars.insert(name);
      } else if (c == ';' || c == '=' || c == '{' || c == ',' || c == ')') {
        info->unordered_vars.insert(name);
      }
    }
  }
  // Variables declared with an unordered alias, directly or as the value
  // type of another container ("std::vector<Layout> layouts").
  for (const std::string& alias : info->unordered_aliases) {
    for (size_t pos : FindWord(code, alias)) {
      size_t i = SkipSpace(code, pos + alias.size());
      if (i < code.size() && code[i] == '>') {
        // "...<Alias>" — the enclosing container holds unordered values.
        i = SkipSpace(code, i + 1);
        while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
          i = SkipSpace(code, i + 1);
        }
        std::string name = ReadIdent(code, i);
        if (!name.empty()) info->unordered_elem_vars.insert(name);
      } else {
        std::string name = ReadIdent(code, i);
        if (name.empty()) continue;
        size_t j = SkipSpace(code, i + name.size());
        char c = j < code.size() ? code[j] : '\0';
        if (c == ';' || c == '=' || c == '{' || c == '(' || c == ',') {
          info->unordered_vars.insert(name);
        }
      }
    }
  }
  // "auto v = Func(...)" where Func returns an unordered container.
  for (size_t pos : FindWord(code, "auto")) {
    size_t i = SkipSpace(code, pos + 4);
    while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
      i = SkipSpace(code, i + 1);
    }
    std::string name = ReadIdent(code, i);
    if (name.empty()) continue;
    i = SkipSpace(code, i + name.size());
    if (i >= code.size() || code[i] != '=') continue;
    i = SkipSpace(code, i + 1);
    // Callee is the last identifier before '(' in the initializer.
    size_t call = code.find('(', i);
    size_t semi = code.find(';', i);
    if (call == std::string::npos ||
        (semi != std::string::npos && semi < call)) {
      continue;
    }
    size_t id_end = call;
    while (id_end > i && !IsIdentChar(code[id_end - 1])) --id_end;
    size_t id_start = id_end;
    while (id_start > i && IsIdentChar(code[id_start - 1])) --id_start;
    std::string callee = code.substr(id_start, id_end - id_start);
    if (info->unordered_funcs.count(callee) > 0) {
      info->unordered_vars.insert(name);
    }
  }
  // std::atomic<...> declarations (for the implicit seq_cst ++/-- check).
  for (size_t pos : FindWord(code, "atomic")) {
    size_t i = SkipSpace(code, pos + 6);
    if (i >= code.size() || code[i] != '<') continue;
    i = SkipAngles(code, i);
    if (i == std::string::npos) continue;
    i = SkipSpace(code, i);
    while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
      i = SkipSpace(code, i + 1);
    }
    std::string name = ReadIdent(code, i);
    if (!name.empty()) {
      info->atomic_vars[name].push_back(EnclosingBlock(code, pos));
    }
  }
}

// --------------------------------------------------------------------------
// Token-stream index.
// --------------------------------------------------------------------------

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}

bool IsIdentTok(const Token& t) { return t.kind == Token::Kind::kIdent; }

// Enum definitions: `enum [class|struct] Name [: base] { kA [= expr], ... }`.
void CollectEnums(const std::vector<Token>& toks, std::vector<EnumDef>* out) {
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "enum")) continue;
    size_t j = i + 1;
    if (j < toks.size() &&
        (IsIdent(toks[j], "class") || IsIdent(toks[j], "struct"))) {
      ++j;
    }
    if (j >= toks.size() || !IsIdentTok(toks[j])) continue;
    EnumDef def;
    def.name = toks[j].text;
    def.offset = toks[i].offset;
    ++j;
    // Skip the underlying-type clause up to the body (or bail on a forward
    // declaration).
    while (j < toks.size() && !IsPunct(toks[j], "{") && !IsPunct(toks[j], ";")) {
      ++j;
    }
    if (j >= toks.size() || !IsPunct(toks[j], "{")) continue;
    size_t body_end = MatchBraceTok(toks, j);
    size_t k = j + 1;
    while (k + 1 < body_end) {
      if (IsIdentTok(toks[k])) {
        def.enumerators.push_back(toks[k].text);
        ++k;
        // Skip an initializer expression to the enumerator separator.
        int depth = 0;
        while (k + 1 < body_end) {
          if (IsPunct(toks[k], "(") || IsPunct(toks[k], "{")) ++depth;
          if (IsPunct(toks[k], ")") || IsPunct(toks[k], "}")) --depth;
          if (depth == 0 && IsPunct(toks[k], ",")) break;
          ++k;
        }
      }
      ++k;
    }
    if (!def.enumerators.empty()) out->push_back(std::move(def));
  }
}

// Parses one switch whose keyword is at toks[i]; appends it (and any nested
// switches) to `out` and returns the token index one past the switch.
size_t ParseSwitch(const std::vector<Token>& toks, size_t i,
                   std::vector<SwitchStmt>* out) {
  size_t j = i + 1;
  if (j >= toks.size() || !IsPunct(toks[j], "(")) return i + 1;
  size_t cond_end = MatchParenTok(toks, j);
  if (cond_end >= toks.size() || !IsPunct(toks[cond_end], "{")) {
    return cond_end;
  }
  size_t body_end = MatchBraceTok(toks, cond_end);
  SwitchStmt sw;
  sw.offset = toks[i].offset;
  size_t k = cond_end + 1;
  while (k + 1 < body_end) {
    if (IsIdent(toks[k], "switch")) {
      k = ParseSwitch(toks, k, out);  // nested switch owns its own cases
      continue;
    }
    if (IsIdent(toks[k], "case")) {
      // Label tokens run to the next plain ":" ("::"" lexes as one token).
      std::string qual;
      std::string enumerator;
      ++k;
      while (k + 1 < body_end && !IsPunct(toks[k], ":")) {
        if (IsIdentTok(toks[k])) {
          if (k + 1 < body_end && IsPunct(toks[k + 1], "::")) {
            qual = toks[k].text;
          } else {
            enumerator = toks[k].text;
          }
        }
        ++k;
      }
      if (!qual.empty() && !enumerator.empty()) {
        if (sw.enum_name.empty()) sw.enum_name = qual;
        sw.cases.push_back(enumerator);
      }
      continue;
    }
    if (IsIdent(toks[k], "default") && k + 1 < body_end &&
        IsPunct(toks[k + 1], ":")) {
      sw.has_default = true;
      sw.default_offset = toks[k].offset;
    }
    ++k;
  }
  if (!sw.enum_name.empty()) out->push_back(std::move(sw));
  return body_end;
}

void CollectSwitches(const std::vector<Token>& toks,
                     std::vector<SwitchStmt>* out) {
  // Top-level walk; ParseSwitch recurses into nested bodies, and appends
  // every switch it sees, so skipping past each parsed switch here avoids
  // double-counting.
  for (size_t i = 0; i < toks.size();) {
    if (IsIdent(toks[i], "switch")) {
      i = ParseSwitch(toks, i, out);
    } else {
      ++i;
    }
  }
}

struct StructSpan {
  std::string name;
  size_t body_begin = 0;  // token index of '{'
  size_t body_end = 0;    // token index one past '}'
};

void CollectStructs(const std::vector<Token>& toks,
                    std::vector<StructSpan>* out) {
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "struct") && !IsIdent(toks[i], "class")) continue;
    if (i > 0 && IsIdent(toks[i - 1], "enum")) continue;
    size_t j = i + 1;
    if (j >= toks.size() || !IsIdentTok(toks[j])) continue;
    StructSpan span;
    span.name = toks[j].text;
    ++j;
    // A template specialization head (`struct Serde<std::vector<T>>`) or a
    // base-clause runs to the body; a ';' first means forward declaration.
    int angle = 0;
    while (j < toks.size()) {
      if (IsPunct(toks[j], "<")) ++angle;
      if (IsPunct(toks[j], ">")) --angle;
      if (angle == 0 && IsPunct(toks[j], ";")) break;
      if (angle == 0 && IsPunct(toks[j], "{")) {
        span.body_begin = j;
        span.body_end = MatchBraceTok(toks, j);
        out->push_back(span);
        break;
      }
      if (angle == 0 && IsPunct(toks[j], "(")) break;  // constructor, not def
      ++j;
    }
  }
}

const StructSpan* InnermostStruct(const std::vector<StructSpan>& structs,
                                  size_t tok_index) {
  const StructSpan* best = nullptr;
  for (const StructSpan& s : structs) {
    if (s.body_begin < tok_index && tok_index < s.body_end) {
      if (best == nullptr || s.body_begin > best->body_begin) best = &s;
    }
  }
  return best;
}

// Wire-primitive vocabulary: BufferWriter::Put* / BufferReader::Get* method
// names mapped to their shared wire kind.
const char* WireKind(const std::string& method, bool* is_encode) {
  struct Entry {
    const char* put;
    const char* get;
    const char* kind;
  };
  static const Entry kEntries[] = {
      {"PutByte", "GetByte", "byte"},
      {"PutRaw", "GetRaw", "raw"},
      {"PutVarint32", "GetVarint32", "varint32"},
      {"PutVarint64", "GetVarint64", "varint64"},
      {"PutSignedVarint64", "GetSignedVarint64", "svarint64"},
      {"PutDouble", "GetDouble", "double"},
      {"PutFloat", "GetFloat", "float"},
      {"PutString", "GetString", "string"},
  };
  for (const Entry& e : kEntries) {
    if (method == e.put) {
      *is_encode = true;
      return e.kind;
    }
    if (method == e.get) {
      *is_encode = false;
      return e.kind;
    }
  }
  return nullptr;
}

// Identifiers that never name a serialized field: casts, type names, the
// writer/reader locals, output-pointer prefixes, and accessor methods.
bool IsFieldNameNoise(const std::string& id) {
  static const std::set<std::string> kNoise = {
      "static_cast", "reinterpret_cast", "const_cast", "std", "string",
      "string_view", "vector", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
      "int8_t", "int16_t", "int32_t", "int64_t", "size_t", "char", "int",
      "unsigned", "signed", "long", "short", "double", "float", "bool",
      "out", "ctx", "this", "size", "data", "begin", "end", "c_str",
      "Encode", "first", "second", "value", "get", "sizeof",
  };
  return kNoise.count(id) > 0;
}

// Splits the argument list of the call whose '(' is at toks[open] into
// top-level argument token ranges.
std::vector<std::pair<size_t, size_t>> SplitArgs(
    const std::vector<Token>& toks, size_t open) {
  std::vector<std::pair<size_t, size_t>> args;
  size_t close = MatchParenTok(toks, open);
  if (close == toks.size()) return args;
  size_t start = open + 1;
  int depth = 0;
  for (size_t i = open + 1; i + 1 < close; ++i) {
    if (toks[i].kind == Token::Kind::kPunct) {
      const std::string& t = toks[i].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (depth == 0 && t == ",") {
        args.push_back({start, i});
        start = i + 1;
      }
    }
  }
  if (start < close - 1 || start == open + 1) {
    if (close - 1 > start) args.push_back({start, close - 1});
  }
  return args;
}

std::string FieldNameFromArg(const std::vector<Token>& toks,
                             std::pair<size_t, size_t> arg) {
  for (size_t i = arg.first; i < arg.second; ++i) {
    if (IsIdentTok(toks[i]) && !IsFieldNameNoise(toks[i].text)) {
      return toks[i].text;
    }
  }
  return "";
}

// Extracts the flat serde op sequence of one codec body.
std::vector<SerdeOp> ExtractOps(const std::vector<Token>& toks,
                                size_t body_begin, size_t body_end) {
  std::vector<SerdeOp> ops;
  for (size_t i = body_begin; i < body_end; ++i) {
    if (!IsIdentTok(toks[i])) continue;
    const std::string& name = toks[i].text;
    bool member = i > 0 && (IsPunct(toks[i - 1], ".") ||
                            IsPunct(toks[i - 1], "->"));
    bool qualified = i > 0 && IsPunct(toks[i - 1], "::");
    bool call = i + 1 < body_end && IsPunct(toks[i + 1], "(");

    bool is_encode = false;
    const char* kind = WireKind(name, &is_encode);
    if (kind != nullptr && member && call) {
      SerdeOp op;
      op.kind = kind;
      op.offset = toks[i].offset;
      auto args = SplitArgs(toks, i + 1);
      if (!args.empty()) op.name = FieldNameFromArg(toks, args[0]);
      ops.push_back(std::move(op));
      continue;
    }
    if (name == "Serde" && i + 1 < body_end && IsPunct(toks[i + 1], "<")) {
      size_t after = MatchAngleTok(toks, i + 1);
      if (after + 2 < body_end && IsPunct(toks[after], "::") &&
          (IsIdent(toks[after + 1], "Write") ||
           IsIdent(toks[after + 1], "Read")) &&
          IsPunct(toks[after + 2], "(")) {
        std::string type_args;
        for (size_t k = i + 1; k < after; ++k) type_args += toks[k].text;
        SerdeOp op;
        op.kind = "serde" + type_args;
        op.offset = toks[i].offset;
        auto args = SplitArgs(toks, after + 2);
        if (args.size() >= 2) op.name = FieldNameFromArg(toks, args[1]);
        ops.push_back(std::move(op));
        i = after + 2;
        continue;
      }
    }
    if (name == "SerializeTo" && member && call) {
      SerdeOp op;
      op.kind = "nested";
      op.offset = toks[i].offset;
      if (i >= 2 && IsIdentTok(toks[i - 2])) op.name = toks[i - 2].text;
      ops.push_back(std::move(op));
      continue;
    }
    if (name == "DeserializeFrom" && qualified && call) {
      SerdeOp op;
      op.kind = "nested";
      op.offset = toks[i].offset;
      auto args = SplitArgs(toks, i + 1);
      if (args.size() >= 2) op.name = FieldNameFromArg(toks, args[1]);
      ops.push_back(std::move(op));
      continue;
    }
    if ((name == "EncodeDataset" || name == "DecodeDataset") && call) {
      SerdeOp op;
      op.kind = "dataset";
      op.offset = toks[i].offset;
      if (name == "EncodeDataset") {
        auto args = SplitArgs(toks, i + 1);
        if (args.size() >= 2) op.name = FieldNameFromArg(toks, args[1]);
      }
      ops.push_back(std::move(op));
      continue;
    }
  }
  return ops;
}

bool IsEncodeName(const std::string& fn) {
  return fn == "Encode" || fn == "EncodeTo" || fn == "SerializeTo" ||
         fn == "Write";
}

bool IsDecodeName(const std::string& fn) {
  return fn == "Decode" || fn == "DecodeNew" || fn == "DeserializeFrom" ||
         fn == "Read";
}

void CollectCodecPairs(const std::vector<Token>& toks,
                       const std::vector<StructSpan>& structs,
                       std::vector<CodecPair>* out) {
  // Pairing key: the struct body for in-class definitions (each Serde
  // specialization pairs its own Write/Read), the qualifier for out-of-line
  // ones (protocol.cc's `JobSubmitMsg::Encode`).
  std::map<std::string, std::vector<CodecFn>> groups;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdentTok(toks[i])) continue;
    const std::string& fn = toks[i].text;
    if (!IsEncodeName(fn) && !IsDecodeName(fn)) continue;
    if (i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
      continue;  // member call, not a definition
    }
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
    size_t params_end = MatchParenTok(toks, i + 1);
    size_t j = params_end;
    while (j < toks.size() &&
           (IsIdent(toks[j], "const") || IsIdent(toks[j], "noexcept") ||
            IsIdent(toks[j], "override") || IsIdent(toks[j], "final"))) {
      ++j;
    }
    if (j >= toks.size() || !IsPunct(toks[j], "{")) continue;  // declaration
    size_t body_end = MatchBraceTok(toks, j);

    CodecFn codec;
    codec.fn = fn;
    codec.is_encode = IsEncodeName(fn);
    codec.offset = toks[i].offset;
    std::string key;
    if (i >= 2 && IsPunct(toks[i - 1], "::") && IsIdentTok(toks[i - 2])) {
      codec.owner = toks[i - 2].text;
      key = "q:" + codec.owner;
    } else if (const StructSpan* s = InnermostStruct(structs, i)) {
      codec.owner = s->name;
      key = "s:" + std::to_string(s->body_begin);
    } else {
      continue;  // free function named Write/Read/... — not a codec
    }
    // Bare Write/Read only pair inside Serde specializations; anywhere else
    // those names are ordinary I/O methods.
    if ((fn == "Write" || fn == "Read") &&
        codec.owner.compare(0, 5, "Serde") != 0) {
      continue;
    }
    codec.ops = ExtractOps(toks, j + 1, body_end - 1);
    groups[key].push_back(std::move(codec));
  }
  for (auto& [key, fns] : groups) {
    const CodecFn* enc = nullptr;
    const CodecFn* dec = nullptr;
    for (const CodecFn& fn : fns) {
      if (fn.is_encode && enc == nullptr) enc = &fn;
      if (!fn.is_encode && dec == nullptr) dec = &fn;
    }
    if (enc != nullptr && dec != nullptr) out->push_back({*enc, *dec});
  }
}

void CollectNameSites(const std::vector<Token>& toks,
                      std::vector<NameSite>* out) {
  struct Api {
    const char* name;
    NameSite::Kind kind;
    int args;  // how many leading arguments carry names; -1 = all
  };
  static const Api kApis[] = {
      {"GetCounter", NameSite::Kind::kMetric, -1},
      {"GetGauge", NameSite::Kind::kMetric, -1},
      {"GetHistogram", NameSite::Kind::kMetric, -1},
      {"DDP_METRIC_COUNTER_ADD", NameSite::Kind::kMetric, 1},
      {"DDP_METRIC_HISTOGRAM_SECONDS", NameSite::Kind::kMetric, 1},
      {"DDP_METRIC_HISTOGRAM_RECORD", NameSite::Kind::kMetric, 1},
      {"DDP_METRIC_GAUGE_SET", NameSite::Kind::kMetric, 1},
      {"DDP_TRACE_SPAN", NameSite::Kind::kSpan, -1},
      {"DDP_TRACE_SCOPE", NameSite::Kind::kSpan, -1},
  };
  auto collect = [&](size_t open, NameSite::Kind kind, int arg_limit) {
    auto args = SplitArgs(toks, open);
    NameSite site;
    site.kind = kind;
    size_t n = arg_limit < 0 ? args.size()
                             : std::min(args.size(), size_t(arg_limit));
    for (size_t a = 0; a < n; ++a) {
      for (size_t i = args[a].first; i < args[a].second; ++i) {
        if (toks[i].kind == Token::Kind::kString) {
          site.literals.push_back({toks[i].value, toks[i].offset});
        } else if (IsIdentTok(toks[i]) &&
                   (toks[i].text.compare(0, 7, "kMetric") == 0 ||
                    toks[i].text.compare(0, 5, "kSpan") == 0 ||
                    toks[i].text.compare(0, 4, "kCat") == 0)) {
          site.idents.push_back({toks[i].text, toks[i].offset});
        }
      }
    }
    if (!site.literals.empty() || !site.idents.empty()) {
      out->push_back(std::move(site));
    }
  };
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdentTok(toks[i])) continue;
    for (const Api& api : kApis) {
      if (toks[i].text == api.name && i + 1 < toks.size() &&
          IsPunct(toks[i + 1], "(")) {
        collect(i + 1, api.kind, api.args);
        break;
      }
    }
    // Span construction: `obs::Span sp("mr", "x")`,
    // `std::make_unique<obs::Span>("mr", "x")`, `span_.emplace("mr", name)`
    // is dynamic and skipped (no literals).
    if (toks[i].text == "Span") {
      size_t j = i + 1;
      if (j < toks.size() && IsPunct(toks[j], ">")) ++j;  // make_unique<..>
      else if (j < toks.size() && IsIdentTok(toks[j])) ++j;  // named variable
      if (j < toks.size() && IsPunct(toks[j], "(")) {
        collect(j, NameSite::Kind::kSpan, -1);
      }
    }
  }
}

}  // namespace

FileIndex BuildFileIndex(const SourceFile& f) {
  FileIndex idx;
  idx.tokens = Lex(f);
  CollectEnums(idx.tokens, &idx.enums);
  CollectSwitches(idx.tokens, &idx.switches);
  std::vector<StructSpan> structs;
  CollectStructs(idx.tokens, &structs);
  CollectCodecPairs(idx.tokens, structs, &idx.codec_pairs);
  CollectNameSites(idx.tokens, &idx.name_sites);
  return idx;
}

// --------------------------------------------------------------------------
// Registry and doc parsing.
// --------------------------------------------------------------------------

namespace {

bool AnyEntryHas(const std::vector<RegistryEntry>& entries,
                 const std::string& literal) {
  for (const RegistryEntry& e : entries) {
    if (e.literal == literal) return true;
  }
  return false;
}

bool AnyEntryConstant(const std::vector<RegistryEntry>& entries,
                      const std::string& constant) {
  for (const RegistryEntry& e : entries) {
    if (e.constant == constant) return true;
  }
  return false;
}

bool AnyNameHas(const std::vector<std::pair<std::string, size_t>>& names,
                const std::string& name) {
  for (const auto& [n, line] : names) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace

bool NameRegistry::HasMetric(const std::string& literal) const {
  return AnyEntryHas(metrics, literal);
}

bool NameRegistry::HasSpanOrCategory(const std::string& literal) const {
  return AnyEntryHas(spans, literal) || AnyEntryHas(categories, literal);
}

bool NameRegistry::HasConstant(const std::string& constant) const {
  return AnyEntryConstant(metrics, constant) ||
         AnyEntryConstant(spans, constant) ||
         AnyEntryConstant(categories, constant);
}

NameRegistry ParseRegistry(const SourceFile& f) {
  NameRegistry reg;
  reg.path = f.path;
  std::vector<Token> toks = Lex(f);
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string& name = toks[i].text;
    bool metric = name.compare(0, 7, "kMetric") == 0;
    bool span = name.compare(0, 5, "kSpan") == 0;
    bool cat = name.compare(0, 4, "kCat") == 0;
    if (!metric && !span && !cat) continue;
    if (toks[i + 1].kind != Token::Kind::kPunct || toks[i + 1].text != "=") {
      continue;
    }
    if (toks[i + 2].kind != Token::Kind::kString) continue;
    RegistryEntry entry;
    entry.constant = name;
    entry.literal = toks[i + 2].value;
    entry.line = LineOfOffset(f, toks[i].offset);
    if (metric) reg.metrics.push_back(std::move(entry));
    if (span) reg.spans.push_back(std::move(entry));
    if (cat) reg.categories.push_back(std::move(entry));
    reg.present = true;
  }
  return reg;
}

bool DocNames::HasMetric(const std::string& name) const {
  return AnyNameHas(metrics, name);
}

bool DocNames::HasSpan(const std::string& name) const {
  return AnyNameHas(span_names, name);
}

bool DocNames::HasCategory(const std::string& name) const {
  return AnyNameHas(categories, name);
}

namespace {

// Pulls every `backticked` token out of one markdown table cell; tokens with
// characters outside [a-z0-9_.] (templates like `server.job.<id>.mr_jobs`,
// prose) are skipped.
void BacktickedNames(const std::string& cell, size_t line,
                     std::vector<std::pair<std::string, size_t>>* out) {
  size_t i = 0;
  while ((i = cell.find('`', i)) != std::string::npos) {
    size_t end = cell.find('`', i + 1);
    if (end == std::string::npos) return;
    std::string name = cell.substr(i + 1, end - i - 1);
    bool ok = !name.empty();
    for (char c : name) {
      if (!(islower(static_cast<unsigned char>(c)) ||
            isdigit(static_cast<unsigned char>(c)) || c == '_' || c == '.')) {
        ok = false;
      }
    }
    if (ok) out->push_back({std::move(name), line});
    i = end + 1;
  }
}

std::vector<std::string> SplitCells(const std::string& line) {
  std::vector<std::string> cells;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '|') {
      cells.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return cells;
}

}  // namespace

bool ParseDocNames(const std::string& fs_path, const std::string& report_path,
                   DocNames* out) {
  std::ifstream in(fs_path);
  if (!in) return false;
  out->path = report_path;
  out->present = true;
  enum class Section { kOther, kSpans, kMetrics };
  Section section = Section::kOther;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.compare(0, 3, "## ") == 0) {
      if (line == "## Span taxonomy") {
        section = Section::kSpans;
      } else if (line == "## Metric names") {
        section = Section::kMetrics;
      } else {
        section = Section::kOther;
      }
      continue;
    }
    if (section == Section::kOther) continue;
    if (line.empty() || line[0] != '|') continue;
    std::vector<std::string> cells = SplitCells(line);
    if (cells.size() < 3) continue;
    if (cells[1].find("---") != std::string::npos) continue;  // separator row
    if (section == Section::kSpans) {
      BacktickedNames(cells[1], lineno, &out->categories);
      BacktickedNames(cells[2], lineno, &out->span_names);
    } else {
      BacktickedNames(cells[1], lineno, &out->metrics);
    }
  }
  return true;
}

}  // namespace ddp_lint

// Text layer of ddp_lint: file loading with comment/string/raw-string
// scrubbing, suppression-comment parsing, and the offset-based text helpers
// every rule builds on. The scrubbed `code` view keeps newlines (so offsets
// and line numbers agree with `raw`) and blanks everything a rule must never
// match: comment prose, string/char literal contents, raw string bodies.
//
// This layer is behavior-identical to the original single-file ddp_lint; the
// R1-R7 fixtures in tests/lint_fixtures pin that byte-for-byte.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ddp_lint {

struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct Suppression {
  size_t line = 0;         // line the comment is on
  size_t target_line = 0;  // first line the suppression applies to
  size_t target_end = 0;   // last line (statement continuation) covered
  std::string rule;        // rule id inside allow(...)
  bool has_reason = false;
  bool used = false;
};

// One loaded source file: the raw text, a "code" view with comments and
// string/char literals blanked to spaces (newlines kept, so offsets and line
// numbers agree between the two), and the parsed suppression comments.
struct SourceFile {
  std::string path;  // path as reported in diagnostics
  std::string raw;
  std::string code;
  std::vector<size_t> line_starts;  // offset of each line start
  std::vector<Suppression> suppressions;
};

size_t LineOfOffset(const SourceFile& f, size_t offset);

// Blanks comments and string/char literals (handling escapes and raw string
// literals) so rule regexes never match prose or literal contents, while
// collecting ddp-lint suppression comments.
bool LoadSource(const std::string& fs_path, const std::string& report_path,
                SourceFile* out);

bool IsIdentChar(char c);
bool HasWordBoundaryBefore(const std::string& s, size_t pos);

// Finds every occurrence of `word` in `text` that starts at a word boundary
// and ends before a non-identifier character.
std::vector<size_t> FindWord(const std::string& text, const std::string& word,
                             size_t from = 0, size_t to = std::string::npos);

// Returns the offset one past the matching ')' for the '(' at `open`, or
// npos if unbalanced. Operates on scrubbed code, so parens inside literals
// and comments cannot confuse the count.
size_t MatchParen(const std::string& code, size_t open);

size_t SkipSpace(const std::string& s, size_t i);
std::string ReadIdent(const std::string& s, size_t i);

// Skips a balanced <...> template argument list starting at `i` (which must
// point at '<'); returns the offset just past the closing '>'.
size_t SkipAngles(const std::string& s, size_t i);

// Innermost '{'..'}' block containing `offset`, as [open, close) offsets into
// the scrubbed code; the whole file if the offset is at namespace scope.
std::pair<size_t, size_t> EnclosingBlock(const std::string& code,
                                         size_t offset);

bool ScopeHas(const std::string& code, std::pair<size_t, size_t> scope,
              const std::vector<std::string>& words, bool call_only);

bool PathContains(const std::string& path, std::string_view needle);
bool IsHeader(const std::string& path);

}  // namespace ddp_lint

// Reproduces Fig. 8 and Table III: clustering quality of DP vs. the four
// classic algorithm families (hierarchical, K-means, EM, DBSCAN) on the
// Aggregation-like shaped data set with 7 ground-truth clusters.
//
// The paper's finding: hierarchical and DBSCAN merge clusters that touch;
// K-means and EM break non-oval shapes; DP recovers all seven. We report
// ARI / NMI / purity / #clusters against the planted labels.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "baselines/dbscan.h"
#include "baselines/em_gmm.h"
#include "baselines/hierarchical.h"
#include "baselines/kmeans.h"
#include "baselines/mean_shift.h"
#include "bench/bench_util.h"
#include "core/assignment.h"
#include "core/cutoff.h"
#include "core/decision_graph.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "eval/metrics.h"

namespace ddp {
namespace {

struct Row {
  std::string name;
  std::vector<int> assignment;
};

void Report(const Row& row, const std::vector<int>& truth) {
  double ari =
      std::move(eval::AdjustedRandIndex(row.assignment, truth)).ValueOrDie();
  double nmi = std::move(eval::NormalizedMutualInformation(row.assignment,
                                                           truth))
                   .ValueOrDie();
  double purity = std::move(eval::Purity(row.assignment, truth)).ValueOrDie();
  std::set<int> clusters;
  for (int c : row.assignment) {
    if (c >= 0) clusters.insert(c);
  }
  std::printf("%-14s %8.4f %8.4f %8.4f %10zu\n", row.name.c_str(), ari, nmi,
              purity, clusters.size());
}

void RunShapedSet(const char* name, Dataset ds, size_t true_clusters) {
  const std::vector<int>& truth = ds.labels();
  std::printf("\n--- %s: %zu points, %zu shaped clusters ---\n", name,
              ds.size(), true_clusters);
  std::printf("%-14s %8s %8s %8s %10s\n", "algorithm", "ARI", "NMI", "purity",
              "#clusters");

  CountingMetric metric;
  CutoffOptions cutoff_opts;
  cutoff_opts.percentile = 0.02;  // Sec. VI-B configuration
  double dc = std::move(ChooseCutoff(ds, metric, cutoff_opts)).ValueOrDie();
  const size_t k = true_clusters;

  // DP (sequential exact; distributed variants are bit-identical).
  {
    DpScores scores = std::move(ComputeExactDp(ds, dc, metric)).ValueOrDie();
    DecisionGraph graph = DecisionGraph::FromScores(scores);
    ClusterResult result =
        std::move(AssignClusters(ds, scores, graph.SelectTopK(k), metric))
            .ValueOrDie();
    Report({"DP", result.assignment}, truth);
  }
  // Hierarchical (single linkage, k = 7).
  {
    baselines::HierarchicalOptions options;
    options.num_clusters = k;
    options.linkage = baselines::Linkage::kSingle;
    auto result = baselines::RunHierarchical(ds, options, metric);
    result.status().Abort("hierarchical");
    Report({"hierarchical", result->assignment}, truth);
  }
  // K-means (k = 7, ground-truth cluster count as in the paper).
  {
    baselines::KmeansOptions options;
    options.k = k;
    options.seed = 1;
    auto result = baselines::RunKmeans(ds, options, metric);
    result.status().Abort("kmeans");
    Report({"k-means", result->assignment}, truth);
  }
  // EM (diagonal GMM, k = 7).
  {
    baselines::EmGmmOptions options;
    options.k = k;
    options.seed = 1;
    auto result = baselines::RunEmGmm(ds, options, metric);
    result.status().Abort("em");
    Report({"EM", result->assignment}, truth);
  }
  // DBSCAN (epsilon = d_c, minPts = 1 as configured in the paper).
  {
    baselines::DbscanOptions options;
    options.epsilon = dc;
    options.min_points = 1;
    auto result = baselines::RunDbscan(ds, options, metric);
    result.status().Abort("dbscan");
    Report({"DBSCAN", result->assignment}, truth);
  }
  // Mean shift (our extra density-based comparator; bandwidth ~ 2.5 d_c).
  {
    baselines::MeanShiftOptions options;
    options.bandwidth = 2.5 * dc;
    auto result = baselines::RunMeanShift(ds, options, metric);
    result.status().Abort("mean shift");
    Report({"mean shift", result->assignment}, truth);
  }

}

int Main() {
  bench::QuietLogs quiet;
  bench::Banner("Clustering quality: DP vs. previous algorithms",
                "Fig. 8 + Table III (paper: Aggregation + 7 more shaped sets)");

  RunShapedSet("Aggregation-like",
               std::move(gen::AggregationLike(42, bench::Scaled(788)))
                   .ValueOrDie(),
               7);
  RunShapedSet("Spiral-like",
               std::move(gen::SpiralLike(42, bench::Scaled(312))).ValueOrDie(),
               3);
  RunShapedSet("Flame-like",
               std::move(gen::FlameLike(42, bench::Scaled(240))).ValueOrDie(),
               2);
  RunShapedSet("R15-like",
               std::move(gen::R15Like(42, bench::Scaled(600))).ValueOrDie(),
               15);

  std::printf(
      "\nExpected shape (paper): DP scores highest or tied on every shaped\n"
      "set; hierarchical/DBSCAN merge touching clusters; K-means/EM break\n"
      "non-oval shapes (worst on Spiral).\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

// Reproduces Table IV: LSH-DDP vs EDDPC vs Basic-DDP on the BigCross500K-like
// data set — runtime, shuffled data, and number of distance measurements.
//
// Paper's findings to check: LSH-DDP needs less runtime and much less
// shuffled data than EDDPC, while computing MORE distances (it trades exact
// filtering for cheap local work); Basic-DDP loses on every axis. The paper
// reports ~2x runtime advantage for LSH-DDP over EDDPC.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/cutoff.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/eddpc.h"
#include "ddp/lsh_ddp.h"

namespace ddp {
namespace {

int Main() {
  bench::QuietLogs quiet;
  bench::Banner("LSH-DDP vs EDDPC vs Basic-DDP on BigCross500K", "Table IV");

  const size_t n = bench::Scaled(6000);
  Dataset ds = std::move(gen::BigCrossLike(5, n)).ValueOrDie();
  CountingMetric metric;
  double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();
  std::printf("BigCross500K-like: %zu points, %zu dims, d_c = %.3f\n\n",
              ds.size(), ds.dim(), dc);

  BasicDdp::Params bp;
  bp.block_size = 250;  // enough blocks at this scale (see bench_performance)
  BasicDdp basic(bp);
  LshDdp::Params lp;
  lp.accuracy = 0.99;
  lp.lsh.num_layouts = 10;
  lp.lsh.pi = 3;
  LshDdp lsh(lp);
  // The comparator as published (distance-bound filtering only) plus our
  // improved variant with the max-rho replication filter.
  Eddpc::Params published;
  published.use_max_rho_filter = false;
  Eddpc eddpc_published(published);
  Eddpc eddpc_improved;

  // The modeled column charges shuffled bytes a 50 MB/s effective cluster
  // bandwidth (Eq. (9)'s mu), approximating the Hadoop deployment where
  // shuffle IO dominates.
  mr::Options modeled;
  modeled.modeled_shuffle_bandwidth = 50e6;
  std::printf("%-22s %12s %12s %14s %12s\n", "method", "runtime(s)",
              "modeled(s)", "shuffled", "# dist.");
  struct Entry {
    const char* label;
    DistributedDpAlgorithm* algo;
  };
  Entry entries[] = {
      {"LSH-DDP", &lsh},
      {"EDDPC (published)", &eddpc_published},
      {"EDDPC (+maxrho, ours)", &eddpc_improved},
      {"Basic-DDP", &basic},
  };
  for (const Entry& e : entries) {
    DistanceCounter counter;
    CountingMetric metric_counted(&counter);
    mr::RunStats stats;
    Stopwatch timer;
    auto scores = e.algo->ComputeScores(ds, dc, metric_counted, modeled,
                                        &stats);
    scores.status().Abort(e.label);
    std::printf("%-22s %12.2f %12.2f %14s %12s\n", e.label,
                timer.ElapsedSeconds(), stats.TotalModeledSeconds(),
                bench::HumanBytes(stats.TotalShuffleBytes()).c_str(),
                bench::HumanCount(counter.value()).c_str());
  }

  std::printf(
      "\nExpected shape (paper Table IV): Basic-DDP worst on every axis and\n"
      "LSH-DDP computing more distances than EDDPC both reproduce. The\n"
      "paper additionally measured LSH-DDP ~2x faster than EDDPC because its\n"
      "EDDPC shuffled ~7x more than LSH-DDP (hundreds of copies per point);\n"
      "our EDDPC reimplementation replicates far less (cell-radius bound,\n"
      "optional max-rho filter), so that ordering does not reproduce against\n"
      "this stronger comparator -- an honest delta, see EXPERIMENTS.md.\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

// Multi-process execution benchmark: what fork-mode isolation costs, what
// crash-fault tolerance costs on top of it, and what the streamed shuffle
// buys the supervisor in memory.
//
// Runs the same LSH-DDP scoring pipeline five ways — forked workers
// streaming spill runs under a 4 KiB memory budget, forked workers at an
// unlimited budget (runs arrive as in-memory tails), in-process threads,
// forked workers under a SIGKILL chaos schedule, and two separately
// exec'd ddp_worker processes serving registered jobs over TCP (one of
// them crashed mid-shuffle, so the number covers an eviction +
// reassignment cycle) — and reports wall time, jobs/sec, the supervision
// counter totals, and whether all five score sets are bit-identical
// (they must be: that is the contract the channel/supervisor layer is
// built around).
//
// The streamed configuration runs FIRST and snapshots ru_maxrss before and
// after: because peak RSS is monotonic within a process, a later, larger
// configuration can only raise it, so the first checkpoint is an honest
// upper bound on the supervisor's footprint when every run is spilled and
// streamed. The delta to the unlimited-budget checkpoint is the memory the
// supervisor spends actually holding shuffle tails — the bytes the old
// relay path used to buffer as whole map-output payloads.
//
// Emits BENCH_mp.json so the multi-process overhead is machine-trackable
// per PR, alongside BENCH_oocore.json from bench_large_scale.
//
// Run: ./build/bench/bench_multiprocess   (DDP_BENCH_SCALE to enlarge)

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/resource.h>
#endif

#include "bench/bench_util.h"
#include "core/cutoff.h"
#include "dataset/generators.h"
#include "ddp/lsh_ddp.h"
#include "mapreduce/remote_worker.h"
#include "mapreduce/supervisor.h"

#ifndef DDP_WORKER_BIN
#define DDP_WORKER_BIN ""
#endif

namespace ddp {
namespace {

struct MpRun {
  double seconds = 0.0;
  DpScores scores;
  mr::RunStats stats;
};

MpRun Measure(LshDdp* algo, const Dataset& ds, double dc,
              const mr::Options& mr) {
  CountingMetric metric;
  MpRun run;
  Stopwatch timer;
  auto scores = algo->ComputeScores(ds, dc, metric, mr, &run.stats);
  scores.status().Abort("lsh-ddp scoring");
  run.seconds = timer.ElapsedSeconds();
  run.scores = std::move(scores).value();
  return run;
}

bool SameScores(const DpScores& a, const DpScores& b) {
  return a.rho == b.rho && a.delta == b.delta && a.upslope == b.upslope;
}

/// Peak RSS of this process (the supervisor) in KiB; 0 where unavailable.
uint64_t PeakRssKb() {
#ifndef _WIN32
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return static_cast<uint64_t>(ru.ru_maxrss);
  }
#endif
  return 0;
}

int Run() {
  bench::QuietLogs quiet;
  bench::ObsFromEnv obs;
  bench::Banner("Multi-process execution overhead on LSH-DDP",
                "robustness layer; streamed shuffle + supervision");

  const bool fork_supported = mr::ForkExecutionSupported();
  auto data = gen::KddLike(/*seed=*/3, bench::Scaled(8000));
  data.status().Abort("generating data set");
  const Dataset& ds = *data;
  CountingMetric metric;
  double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();
  std::printf("data set: %zu points, %zu dims, d_c = %.3f, fork %s\n\n",
              ds.size(), ds.dim(), dc,
              fork_supported ? "supported" : "UNSUPPORTED (in-proc fallback)");

  LshDdp stream_algo, fork_algo, inproc_algo, chaos_algo, remote_algo;

  // 1. Streamed shuffle at a 4 KiB budget, first so its RSS checkpoint is
  // untainted: every map output spills, every run ships over the channel,
  // and the supervisor's stream window shrinks to the budget.
  mr::Options streamed;
  streamed.exec_mode = mr::ExecMode::kFork;
  streamed.memory_budget_bytes = 4096;
  const uint64_t rss_before_kb = PeakRssKb();
  MpRun stream = Measure(&stream_algo, ds, dc, streamed);
  const uint64_t rss_streamed_kb = PeakRssKb();
  std::printf(
      "forked, 4 KiB budget:    %7.3f s (%llu KiB peak RSS, %llu B streamed, "
      "%llu spill files)\n",
      stream.seconds, static_cast<unsigned long long>(rss_streamed_kb),
      static_cast<unsigned long long>(stream.stats.TotalShuffleStreamedBytes()),
      static_cast<unsigned long long>(stream.stats.TotalSpillFiles()));

  // 2. Unlimited budget: the same streamed protocol, but every run is an
  // in-memory tail the supervisor must hold until the reducers take it —
  // the configuration whose footprint the old relay path always paid.
  mr::Options forked;
  forked.exec_mode = mr::ExecMode::kFork;
  MpRun fork = Measure(&fork_algo, ds, dc, forked);
  const uint64_t rss_buffered_kb = PeakRssKb();
  std::printf(
      "forked, unlimited:       %7.3f s (%llu KiB peak RSS, %llu B streamed, "
      "%llu fallbacks)\n",
      fork.seconds, static_cast<unsigned long long>(rss_buffered_kb),
      static_cast<unsigned long long>(fork.stats.TotalShuffleStreamedBytes()),
      static_cast<unsigned long long>(fork.stats.TotalExecFallbacks()));

  mr::Options inproc;
  MpRun base = Measure(&inproc_algo, ds, dc, inproc);
  std::printf("in-process threads:      %7.3f s (fork overhead %.2fx)\n",
              base.seconds,
              base.seconds > 0.0 ? fork.seconds / base.seconds : 0.0);

  mr::Options chaos = forked;
  chaos.faults.worker_crash_rate = 0.15;
  chaos.faults.seed = 20260808;
  chaos.max_task_attempts = 24;
  chaos.max_worker_restarts = 256;
  chaos.quarantine_after_crashes = 24;  // random crashes are not poison
  MpRun crash = Measure(&chaos_algo, ds, dc, chaos);
  std::printf(
      "forked + 15%% SIGKILLs:   %7.3f s (%.2fx; %llu crashes, %llu respawns, "
      "%llu orphan spills reaped)\n",
      crash.seconds, base.seconds > 0.0 ? crash.seconds / base.seconds : 0.0,
      static_cast<unsigned long long>(crash.stats.TotalWorkerCrashes()),
      static_cast<unsigned long long>(crash.stats.TotalWorkerRestarts()),
      static_cast<unsigned long long>(crash.stats.TotalSpillFilesReaped()));

  // 5. Remote workers: two separately exec'd ddp_worker processes dial an
  // ephemeral loopback listener and run every job by JobRegistry id; the
  // first is told to crash mid-shuffle on its second assignment, so this
  // configuration also prices a worker eviction + task reassignment. The
  // exec'd-process jobs/sec is the serving-relevant throughput number.
  MpRun remote;
  double remote_jobs_per_sec = 0.0;
  bool remote_ran = false;
  if (fork_supported && DDP_WORKER_BIN[0] != '\0') {
    std::unique_ptr<mr::RemoteWorkerPool> pool =
        std::move(mr::RemoteWorkerPool::Listen("127.0.0.1", 0)).ValueOrDie();
    const std::string endpoint =
        pool->host() + ":" + std::to_string(pool->port());
    std::vector<int64_t> worker_pids;
    for (int i = 0; i < 2; ++i) {
      std::vector<std::string> worker_args = {"--connect", endpoint};
      if (i == 0) {
        worker_args.push_back("--chaos-crash-task");
        worker_args.push_back("1");
      }
      worker_pids.push_back(
          std::move(mr::SpawnWorkerProcess(DDP_WORKER_BIN, worker_args))
              .ValueOrDie());
    }
    mr::Options remoted;
    remoted.exec_mode = mr::ExecMode::kRemote;
    remoted.remote_pool = pool.get();
    remote = Measure(&remote_algo, ds, dc, remoted);
    pool->Shutdown();
    for (int64_t pid : worker_pids) mr::WaitWorkerProcess(pid);
    remote_ran = true;
    remote_jobs_per_sec = remote.seconds > 0.0
                              ? static_cast<double>(remote.stats.jobs.size()) /
                                    remote.seconds
                              : 0.0;
    std::printf(
        "2 exec'd ddp_workers:    %7.3f s (%.2fx; %.2f jobs/s, "
        "%llu registered, %llu evicted, %llu tasks reassigned)\n",
        remote.seconds,
        base.seconds > 0.0 ? remote.seconds / base.seconds : 0.0,
        remote_jobs_per_sec,
        static_cast<unsigned long long>(remote.stats.TotalWorkersRegistered()),
        static_cast<unsigned long long>(remote.stats.TotalWorkersEvicted()),
        static_cast<unsigned long long>(remote.stats.TotalTasksReassigned()));
  } else {
    std::printf("2 exec'd ddp_workers:    skipped (%s)\n",
                fork_supported ? "worker binary path not compiled in"
                               : "fork unsupported");
  }

  // The supervisor must actually stream in fork mode: a zero here means the
  // data path regressed to relaying map outputs through result payloads.
  const bool streamed_ok =
      !fork_supported || stream.stats.TotalShuffleStreamedBytes() > 0;
  const uint64_t rss_delta_kb =
      rss_buffered_kb > rss_streamed_kb ? rss_buffered_kb - rss_streamed_kb : 0;
  std::printf(
      "\nsupervisor peak RSS: %llu KiB streamed-at-4KiB vs %llu KiB "
      "unlimited (+%llu KiB to buffer tails)\n",
      static_cast<unsigned long long>(rss_streamed_kb),
      static_cast<unsigned long long>(rss_buffered_kb),
      static_cast<unsigned long long>(rss_delta_kb));

  const bool identical = SameScores(base.scores, fork.scores) &&
                         SameScores(base.scores, stream.scores) &&
                         SameScores(base.scores, crash.scores) &&
                         (!remote_ran || SameScores(base.scores, remote.scores));
  std::printf("bit-identical across all %s substrates: %s\n",
              remote_ran ? "five" : "four",
              identical ? "yes" : "NO — CONTRACT VIOLATION");
  if (!streamed_ok) {
    std::printf("streamed shuffle bytes: 0 — RELAY REGRESSION\n");
  }

  std::FILE* json = std::fopen("BENCH_mp.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"lsh_ddp_multiprocess\",\n"
        "  \"points\": %zu,\n"
        "  \"dims\": %zu,\n"
        "  \"fork_supported\": %s,\n"
        "  \"inproc_seconds\": %.6f,\n"
        "  \"fork_seconds\": %.6f,\n"
        "  \"fork_overhead_ratio\": %.4f,\n"
        "  \"streamed_seconds\": %.6f,\n"
        "  \"streamed_shuffle_bytes\": %llu,\n"
        "  \"rss_start_kb\": %llu,\n"
        "  \"rss_streamed_4k_kb\": %llu,\n"
        "  \"rss_buffered_kb\": %llu,\n"
        "  \"rss_tail_buffer_delta_kb\": %llu,\n"
        "  \"chaos_seconds\": %.6f,\n"
        "  \"chaos_worker_crash_rate\": %.2f,\n"
        "  \"worker_crashes\": %llu,\n"
        "  \"worker_restarts\": %llu,\n"
        "  \"worker_hangs\": %llu,\n"
        "  \"spill_files_reaped\": %llu,\n"
        "  \"channel_reconnects\": %llu,\n"
        "  \"exec_fallbacks\": %llu,\n"
        "  \"remote_ran\": %s,\n"
        "  \"remote_seconds\": %.6f,\n"
        "  \"remote_jobs_per_sec\": %.4f,\n"
        "  \"remote_workers_registered\": %llu,\n"
        "  \"remote_workers_evicted\": %llu,\n"
        "  \"remote_tasks_reassigned\": %llu,\n"
        "  \"bit_identical\": %s\n"
        "}\n",
        ds.size(), ds.dim(), fork_supported ? "true" : "false", base.seconds,
        fork.seconds, base.seconds > 0.0 ? fork.seconds / base.seconds : 0.0,
        stream.seconds,
        static_cast<unsigned long long>(
            stream.stats.TotalShuffleStreamedBytes()),
        static_cast<unsigned long long>(rss_before_kb),
        static_cast<unsigned long long>(rss_streamed_kb),
        static_cast<unsigned long long>(rss_buffered_kb),
        static_cast<unsigned long long>(rss_delta_kb), crash.seconds,
        chaos.faults.worker_crash_rate,
        static_cast<unsigned long long>(crash.stats.TotalWorkerCrashes()),
        static_cast<unsigned long long>(crash.stats.TotalWorkerRestarts()),
        static_cast<unsigned long long>(crash.stats.TotalWorkerHangs()),
        static_cast<unsigned long long>(crash.stats.TotalSpillFilesReaped()),
        static_cast<unsigned long long>(
            crash.stats.TotalChannelReconnects()),
        static_cast<unsigned long long>(fork.stats.TotalExecFallbacks() +
                                        crash.stats.TotalExecFallbacks()),
        remote_ran ? "true" : "false", remote.seconds, remote_jobs_per_sec,
        static_cast<unsigned long long>(remote.stats.TotalWorkersRegistered()),
        static_cast<unsigned long long>(remote.stats.TotalWorkersEvicted()),
        static_cast<unsigned long long>(remote.stats.TotalTasksReassigned()),
        identical ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_mp.json\n");
  }
  return identical && streamed_ok ? 0 : 1;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Run(); }

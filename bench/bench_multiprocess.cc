// Multi-process execution benchmark: what fork-mode isolation costs and
// what crash-fault tolerance costs on top of it.
//
// Runs the same LSH-DDP scoring pipeline three ways — in-process threads,
// forked worker processes, and forked workers under a SIGKILL chaos
// schedule — and reports wall time, the supervision counter totals, and
// whether the three score sets are bit-identical (they must be: that is
// the contract the channel/supervisor layer is built around). Emits
// BENCH_mp.json so the multi-process overhead is machine-trackable per PR,
// alongside BENCH_oocore.json from bench_large_scale.
//
// Run: ./build/bench/bench_multiprocess   (DDP_BENCH_SCALE to enlarge)

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cutoff.h"
#include "dataset/generators.h"
#include "ddp/lsh_ddp.h"
#include "mapreduce/supervisor.h"

namespace ddp {
namespace {

struct MpRun {
  double seconds = 0.0;
  DpScores scores;
  mr::RunStats stats;
};

MpRun Measure(LshDdp* algo, const Dataset& ds, double dc,
              const mr::Options& mr) {
  CountingMetric metric;
  MpRun run;
  Stopwatch timer;
  auto scores = algo->ComputeScores(ds, dc, metric, mr, &run.stats);
  scores.status().Abort("lsh-ddp scoring");
  run.seconds = timer.ElapsedSeconds();
  run.scores = std::move(scores).value();
  return run;
}

bool SameScores(const DpScores& a, const DpScores& b) {
  return a.rho == b.rho && a.delta == b.delta && a.upslope == b.upslope;
}

int Run() {
  bench::QuietLogs quiet;
  bench::ObsFromEnv obs;
  bench::Banner("Multi-process execution overhead on LSH-DDP",
                "robustness layer; crash-fault-tolerant supervision");

  const bool fork_supported = mr::ForkExecutionSupported();
  auto data = gen::KddLike(/*seed=*/3, bench::Scaled(8000));
  data.status().Abort("generating data set");
  const Dataset& ds = *data;
  CountingMetric metric;
  double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();
  std::printf("data set: %zu points, %zu dims, d_c = %.3f, fork %s\n\n",
              ds.size(), ds.dim(), dc,
              fork_supported ? "supported" : "UNSUPPORTED (in-proc fallback)");

  LshDdp inproc_algo, fork_algo, chaos_algo;

  mr::Options inproc;
  MpRun base = Measure(&inproc_algo, ds, dc, inproc);
  std::printf("in-process threads:      %7.3f s\n", base.seconds);

  mr::Options forked;
  forked.exec_mode = mr::ExecMode::kFork;
  MpRun fork = Measure(&fork_algo, ds, dc, forked);
  std::printf("forked workers:          %7.3f s (%.2fx, %llu fallbacks)\n",
              fork.seconds,
              base.seconds > 0.0 ? fork.seconds / base.seconds : 0.0,
              static_cast<unsigned long long>(fork.stats.TotalExecFallbacks()));

  mr::Options chaos = forked;
  chaos.faults.worker_crash_rate = 0.15;
  chaos.faults.seed = 20260808;
  chaos.max_task_attempts = 24;
  chaos.max_worker_restarts = 256;
  chaos.quarantine_after_crashes = 24;  // random crashes are not poison
  MpRun crash = Measure(&chaos_algo, ds, dc, chaos);
  std::printf(
      "forked + 15%% SIGKILLs:   %7.3f s (%.2fx; %llu crashes, %llu respawns, "
      "%llu orphan spills reaped)\n",
      crash.seconds, base.seconds > 0.0 ? crash.seconds / base.seconds : 0.0,
      static_cast<unsigned long long>(crash.stats.TotalWorkerCrashes()),
      static_cast<unsigned long long>(crash.stats.TotalWorkerRestarts()),
      static_cast<unsigned long long>(crash.stats.TotalSpillFilesReaped()));

  const bool identical =
      SameScores(base.scores, fork.scores) &&
      SameScores(base.scores, crash.scores);
  std::printf("\nbit-identical across all three substrates: %s\n",
              identical ? "yes" : "NO — CONTRACT VIOLATION");

  std::FILE* json = std::fopen("BENCH_mp.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"lsh_ddp_multiprocess\",\n"
        "  \"points\": %zu,\n"
        "  \"dims\": %zu,\n"
        "  \"fork_supported\": %s,\n"
        "  \"inproc_seconds\": %.6f,\n"
        "  \"fork_seconds\": %.6f,\n"
        "  \"fork_overhead_ratio\": %.4f,\n"
        "  \"chaos_seconds\": %.6f,\n"
        "  \"chaos_worker_crash_rate\": %.2f,\n"
        "  \"worker_crashes\": %llu,\n"
        "  \"worker_restarts\": %llu,\n"
        "  \"worker_hangs\": %llu,\n"
        "  \"spill_files_reaped\": %llu,\n"
        "  \"exec_fallbacks\": %llu,\n"
        "  \"bit_identical\": %s\n"
        "}\n",
        ds.size(), ds.dim(), fork_supported ? "true" : "false", base.seconds,
        fork.seconds, base.seconds > 0.0 ? fork.seconds / base.seconds : 0.0,
        crash.seconds, chaos.faults.worker_crash_rate,
        static_cast<unsigned long long>(crash.stats.TotalWorkerCrashes()),
        static_cast<unsigned long long>(crash.stats.TotalWorkerRestarts()),
        static_cast<unsigned long long>(crash.stats.TotalWorkerHangs()),
        static_cast<unsigned long long>(crash.stats.TotalSpillFilesReaped()),
        static_cast<unsigned long long>(
            fork.stats.TotalExecFallbacks() +
            crash.stats.TotalExecFallbacks()),
        identical ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_mp.json\n");
  }
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Run(); }

#pragma once

#include <cstddef>
#include <cstdint>

namespace ddp {
namespace bench_obs {

/// The span-per-iteration loop from bench_obs.cc, built in a translation
/// unit compiled with -DDDP_OBS_NO_TRACING. Measures the compile-time no-op
/// macro path.
uint64_t SpanLoopCompiledOut(size_t iters);

}  // namespace bench_obs
}  // namespace ddp


// Serving-layer benchmark: sustained job throughput of one DdpServer under
// 1, 4, and 8 concurrent clients, plus what the result cache buys.
//
// Each round starts a fresh server on an ephemeral port, then drives it the
// way a real deployment does — every client is its own DdpClient on its own
// TCP connection, submitting jobs serially and blocking on WaitForResult.
// The cold phase uses a distinct seed per job so every submission misses
// the result cache and runs the full LSH-DDP pipeline; the warm phase
// resubmits the identical jobs, so every one must be answered from the
// result cache at submit time. The round's cache-hit ratio is read back
// from the server's own `server.result_cache_*` counters rather than
// inferred, and job latency quantiles come from the `server.job_seconds`
// histogram (cold runs only: cache hits never reach the scheduler, which
// is exactly the point).
//
// Emits BENCH_server.json so serving throughput is machine-trackable per
// PR, alongside BENCH_mp.json from bench_multiprocess.
//
// Run: ./build/bench/bench_server   (DDP_BENCH_SCALE to enlarge)

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "dataset/csv.h"
#include "dataset/generators.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"

namespace ddp {
namespace {

constexpr size_t kJobsPerClient = 4;

struct RoundReport {
  size_t clients = 0;
  size_t cold_jobs = 0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  double cache_hit_ratio = 0.0;
  double p50_job_ms = 0.0;
  double p95_job_ms = 0.0;
  uint64_t distance_evals = 0;
  bool all_done = true;
  bool warm_all_cached = true;

  double ColdJobsPerSec() const {
    return cold_seconds > 0.0
               ? static_cast<double>(cold_jobs) / cold_seconds
               : 0.0;
  }
  double WarmJobsPerSec() const {
    return warm_seconds > 0.0
               ? static_cast<double>(cold_jobs) / warm_seconds
               : 0.0;
  }
};

server::JobParams ParamsForJob(size_t round, size_t client, size_t job) {
  server::JobParams params;
  params.algo = "lsh";
  params.k = 8;
  params.seed = 1000 * (round + 1) + 100 * client + job;
  return params;
}

/// One client's serial submit/wait loop; `phase_ok` records whether every
/// job reached kDone, `phase_cached` whether every reply was a cache hit.
void ClientLoop(uint16_t port, size_t round, size_t client, bool* phase_ok,
                bool* phase_cached, const std::string& dataset_path) {
  *phase_ok = true;
  *phase_cached = true;
  auto conn = server::DdpClient::Connect("127.0.0.1", port);
  if (!conn.ok()) {
    *phase_ok = false;
    return;
  }
  for (size_t job = 0; job < kJobsPerClient; ++job) {
    server::JobSubmitMsg msg;
    msg.params = ParamsForJob(round, client, job);
    msg.dataset_path = dataset_path;
    auto submitted = (*conn)->Submit(msg);
    if (!submitted.ok()) {
      *phase_ok = false;
      return;
    }
    server::JobStatusMsg status = *submitted;
    if (status.state == static_cast<uint8_t>(server::JobState::kQueued) ||
        status.state == static_cast<uint8_t>(server::JobState::kRunning)) {
      auto done = (*conn)->WaitForResult(status.job_id, /*timeout=*/600.0);
      if (!done.ok()) {
        *phase_ok = false;
        return;
      }
      status = *done;
    }
    if (status.state != static_cast<uint8_t>(server::JobState::kDone)) {
      *phase_ok = false;
    }
    if (status.from_result_cache == 0) *phase_cached = false;
  }
}

double RunPhase(uint16_t port, size_t round, size_t clients,
                const std::string& dataset_path, bool* ok, bool* cached) {
  std::vector<std::thread> threads;
  std::vector<unsigned char> thread_ok(clients, 1);
  std::vector<unsigned char> thread_cached(clients, 1);
  Stopwatch timer;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      bool one_ok = false;
      bool one_cached = false;
      ClientLoop(port, round, c, &one_ok, &one_cached, dataset_path);
      thread_ok[c] = one_ok ? 1 : 0;
      thread_cached[c] = one_cached ? 1 : 0;
    });
  }
  for (auto& t : threads) t.join();
  double seconds = timer.ElapsedSeconds();
  *ok = true;
  *cached = true;
  for (size_t c = 0; c < clients; ++c) {
    if (thread_ok[c] == 0) *ok = false;
    if (thread_cached[c] == 0) *cached = false;
  }
  return seconds;
}

RoundReport RunRound(size_t round, size_t clients,
                     const std::string& dataset_path,
                     const std::string& work_root) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();

  server::ServerConfig config;
  config.scheduler_threads = clients;
  config.work_dir = work_root + "/round-" + std::to_string(clients);
  auto srv = server::DdpServer::Start(config);
  srv.status().Abort("starting ddp server");

  RoundReport report;
  report.clients = clients;
  report.cold_jobs = clients * kJobsPerClient;

  bool cold_ok = false;
  bool cold_cached = false;
  report.cold_seconds = RunPhase((*srv)->port(), round, clients,
                                 dataset_path, &cold_ok, &cold_cached);

  bool warm_ok = false;
  bool warm_cached = false;
  report.warm_seconds = RunPhase((*srv)->port(), round, clients,
                                 dataset_path, &warm_ok, &warm_cached);
  report.all_done = cold_ok && warm_ok;
  report.warm_all_cached = warm_cached;

  const uint64_t hits =
      registry.GetCounter("server.result_cache_hits")->value();
  const uint64_t misses =
      registry.GetCounter("server.result_cache_misses")->value();
  report.cache_hit_ratio =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  report.distance_evals =
      registry.GetCounter("local_dp.distance_evals")->value();
  const auto lat = registry.GetHistogram("server.job_seconds")->Snap();
  report.p50_job_ms = lat.p50 / 1000.0;  // histogram records microseconds
  report.p95_job_ms = lat.p95 / 1000.0;

  (*srv)->RequestShutdown();
  (*srv)->WaitShutdown();
  return report;
}

int Run() {
  bench::QuietLogs quiet;
  bench::ObsFromEnv obs_session;
  bench::Banner("Serving-layer throughput: DdpServer under concurrent load",
                "ours; jobs/sec, cache-hit ratio, job-latency quantiles");

  namespace fs = std::filesystem;
  const std::string work_root =
      (fs::temp_directory_path() / "ddp-bench-server").string();
  fs::remove_all(work_root);
  fs::create_directories(work_root);

  auto data = gen::S2Like(/*seed=*/7, bench::Scaled(2000));
  data.status().Abort("generating data set");
  const std::string dataset_path = work_root + "/points.csv";
  WriteCsvFile(dataset_path, *data).Abort("writing data set");
  std::printf("data set: %zu points, %zu dims; %zu jobs per client, "
              "cold (all-miss) then warm (all-hit) phase\n\n",
              data->size(), data->dim(), kJobsPerClient);

  const size_t kClientCounts[] = {1, 4, 8};
  std::vector<RoundReport> rounds;
  std::printf("%8s %10s %14s %14s %12s %12s %12s\n", "clients", "jobs",
              "cold jobs/s", "warm jobs/s", "hit ratio", "p50 job",
              "p95 job");
  for (size_t i = 0; i < 3; ++i) {
    RoundReport r = RunRound(i, kClientCounts[i], dataset_path, work_root);
    std::printf("%8zu %10zu %14.2f %14.2f %11.0f%% %9.1f ms %9.1f ms%s%s\n",
                r.clients, 2 * r.cold_jobs, r.ColdJobsPerSec(),
                r.WarmJobsPerSec(), 100.0 * r.cache_hit_ratio, r.p50_job_ms,
                r.p95_job_ms, r.all_done ? "" : "  [JOBS FAILED]",
                r.warm_all_cached ? "" : "  [WARM MISSED CACHE]");
    rounds.push_back(r);
  }

  std::FILE* json = std::fopen("BENCH_server.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"ddp_server_throughput\",\n"
                 "  \"points\": %zu,\n"
                 "  \"dims\": %zu,\n"
                 "  \"jobs_per_client\": %zu,\n"
                 "  \"rounds\": [\n",
                 data->size(), data->dim(), kJobsPerClient);
    for (size_t i = 0; i < rounds.size(); ++i) {
      const RoundReport& r = rounds[i];
      std::fprintf(
          json,
          "    {\"clients\": %zu, \"jobs\": %zu,\n"
          "     \"cold_seconds\": %.6f, \"cold_jobs_per_sec\": %.4f,\n"
          "     \"warm_seconds\": %.6f, \"warm_jobs_per_sec\": %.4f,\n"
          "     \"cache_hit_ratio\": %.4f, \"p50_job_ms\": %.3f,\n"
          "     \"p95_job_ms\": %.3f, \"distance_evals\": %llu,\n"
          "     \"all_done\": %s, \"warm_all_cached\": %s}%s\n",
          r.clients, 2 * r.cold_jobs, r.cold_seconds, r.ColdJobsPerSec(),
          r.warm_seconds, r.WarmJobsPerSec(), r.cache_hit_ratio,
          r.p50_job_ms, r.p95_job_ms,
          static_cast<unsigned long long>(r.distance_evals),
          r.all_done ? "true" : "false",
          r.warm_all_cached ? "true" : "false",
          i + 1 < rounds.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_server.json\n");
  }

  fs::remove_all(work_root);
  bool ok = true;
  for (const RoundReport& r : rounds) {
    ok = ok && r.all_done && r.warm_all_cached;
  }
  if (!ok) {
    std::printf("SERVING CONTRACT VIOLATION: a job failed or a warm "
                "resubmission missed the result cache\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Run(); }

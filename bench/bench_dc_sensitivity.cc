// Reproduces the paper's d_c robustness claim (Sec. III-A, citing the
// original DP paper): "varying d_c (by a factor of 20) produces mutually
// consistent results". We sweep the cutoff over two orders of magnitude
// around the 2% percentile default and report the clustering agreement (ARI)
// of both exact DP and LSH-DDP against ground truth and against the default
// run, plus the gaussian-kernel variant which removes integer rho ties.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/assignment.h"
#include "core/decision_graph.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/lsh_ddp.h"
#include "eval/metrics.h"

namespace ddp {
namespace {

std::vector<int> ClusterWith(const Dataset& ds, const DpScores& scores,
                             size_t k, const CountingMetric& metric) {
  DecisionGraph graph = DecisionGraph::FromScores(scores);
  return std::move(AssignClusters(ds, scores, graph.SelectTopK(k), metric))
      .ValueOrDie()
      .assignment;
}

int Main() {
  bench::QuietLogs quiet;
  bench::Banner("Cutoff distance sensitivity sweep",
                "Sec. III-A robustness claim + gaussian-kernel extension");

  const size_t n = bench::Scaled(1500);
  Dataset ds = std::move(gen::S2Like(11, n)).ValueOrDie();
  CountingMetric metric;
  double dc0 = std::move(ChooseCutoff(ds, metric)).ValueOrDie();
  std::printf("S2-like: %zu points, default d_c = %.1f (2%% percentile)\n\n",
              ds.size(), dc0);

  // Reference assignments at the default cutoff.
  DpScores ref_scores = std::move(ComputeExactDp(ds, dc0, metric)).ValueOrDie();
  std::vector<int> ref = ClusterWith(ds, ref_scores, 15, metric);

  std::printf("%10s | %12s %12s | %12s | %12s\n", "dc/dc0", "DP vs truth",
              "DP vs ref", "LSH vs truth", "kernel DP");
  for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    double dc = mult * dc0;
    // Exact DP, cutoff kernel.
    DpScores scores = std::move(ComputeExactDp(ds, dc, metric)).ValueOrDie();
    std::vector<int> assign = ClusterWith(ds, scores, 15, metric);
    double vs_truth = std::move(eval::AdjustedRandIndex(assign, ds.labels()))
                          .ValueOrDie();
    double vs_ref =
        std::move(eval::AdjustedRandIndex(assign, ref)).ValueOrDie();
    // LSH-DDP at this cutoff.
    LshDdp lsh;
    DpScores lsh_scores;
    bench::MeasureScores(&lsh, ds, dc, mr::Options{}, &lsh_scores);
    std::vector<int> lsh_assign = ClusterWith(ds, lsh_scores, 15, metric);
    double lsh_vs_truth =
        std::move(eval::AdjustedRandIndex(lsh_assign, ds.labels()))
            .ValueOrDie();
    // Exact DP, gaussian kernel (quantized soft densities).
    SequentialDpOptions kernel_opts;
    kernel_opts.kernel = DensityKernel::kGaussian;
    DpScores kernel_scores =
        std::move(ComputeExactDp(ds, dc, metric, kernel_opts)).ValueOrDie();
    std::vector<int> kernel_assign = ClusterWith(ds, kernel_scores, 15, metric);
    double kernel_vs_truth =
        std::move(eval::AdjustedRandIndex(kernel_assign, ds.labels()))
            .ValueOrDie();

    std::printf("%10.2f | %12.4f %12.4f | %12.4f | %12.4f\n", mult, vs_truth,
                vs_ref, lsh_vs_truth, kernel_vs_truth);
  }

  std::printf(
      "\nExpected shape: ARI stays high across the whole sweep (DP is robust\n"
      "to d_c); LSH-DDP tracks exact DP; the gaussian kernel matches or\n"
      "improves on the cutoff kernel by removing integer-rho ties.\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

// Validates the Sec. IV/V analytical model against measurement (the paper
// presents the theory without an explicit validation figure; this bench
// closes that loop and doubles as an ablation of the accuracy model):
//
//  (1) Lemma 3 / P(d, w): Monte-Carlo collision rate of the real p-stable
//      hash function vs. the closed form, over a (d, w) grid.
//  (2) Theorem 1 / A(w, pi, M): measured Pr[rho_hat = rho] (i.e. tau1) vs.
//      the model's lower bound, over the tuned widths for several targets.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/cutoff.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/lsh_ddp.h"
#include "eval/tau.h"
#include "lsh/pstable_hash.h"
#include "lsh/theory.h"
#include "lsh/tuning.h"

namespace ddp {
namespace {

void CollisionTable() {
  std::printf("(1) Collision probability: Monte Carlo vs Lemma 3 formula\n");
  std::printf("%8s %8s %12s %12s %10s\n", "dist", "width", "empirical",
              "P(d,w)", "abs diff");
  Rng rng(99);
  const int trials = 30000;
  for (double d : {0.5, 1.0, 2.0, 4.0}) {
    for (double w : {1.0, 4.0, 16.0}) {
      int collisions = 0;
      for (int t = 0; t < trials; ++t) {
        lsh::PStableHash h = lsh::PStableHash::Random(8, w, &rng);
        std::vector<double> p = rng.GaussianVector(8);
        std::vector<double> dir = rng.GaussianVector(8);
        double norm = 0.0;
        for (double x : dir) norm += x * x;
        norm = std::sqrt(norm);
        std::vector<double> q = p;
        for (size_t k = 0; k < 8; ++k) q[k] += d * dir[k] / norm;
        if (h.Hash(p) == h.Hash(q)) ++collisions;
      }
      double empirical = static_cast<double>(collisions) / trials;
      double theory = lsh::PCollision(d, w);
      std::printf("%8.2f %8.2f %12.4f %12.4f %10.4f\n", d, w, empirical,
                  theory, std::abs(empirical - theory));
    }
  }
}

void AccuracyModelTable(const char* label, Result<Dataset> ds_result) {
  std::printf(
      "\n(2) Accuracy model on %s: measured tau1 vs Theorem 1 target\n",
      label);
  Dataset ds = std::move(ds_result).ValueOrDie();
  CountingMetric metric;
  double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();
  std::vector<uint32_t> exact_rho =
      std::move(ComputeExactRho(ds, dc, metric)).ValueOrDie();
  std::printf("%s: %zu points, d_c = %.3f\n", label, ds.size(), dc);
  std::printf("%8s %4s %4s %10s %10s %12s\n", "A", "M", "pi", "width",
              "tau1", "tau1 >= A?");
  for (double accuracy : {0.6, 0.8, 0.9, 0.99}) {
    const size_t layouts = 10, pi = 3;
    double width =
        std::move(lsh::SolveMinimalWidth(accuracy, layouts, pi, dc))
            .ValueOrDie();
    LshDdp::Params params;
    params.accuracy = accuracy;
    params.lsh.num_layouts = layouts;
    params.lsh.pi = pi;
    LshDdp algo(params);
    DpScores scores;
    bench::MeasureScores(&algo, ds, dc, mr::Options{}, &scores);
    double tau1 = std::move(eval::Tau1(scores.rho, exact_rho)).ValueOrDie();
    std::printf("%8.2f %4zu %4zu %10.3f %10.4f %12s\n", accuracy, layouts, pi,
                width, tau1, tau1 >= accuracy - 0.05 ? "yes" : "NO");
  }
}

int Main() {
  bench::QuietLogs quiet;
  bench::Banner("Analytical model validation", "Sec. IV Lemmas 1-4, Sec. V");
  CollisionTable();
  // Fig. 9's setting: well-separated modes with d_c comfortably above the
  // mode diameter (the regime the 1-2% rule produces on the real sets),
  // where Lemma 1's single-neighbor model is realized. Same instance as
  // bench_accuracy.
  AccuracyModelTable("BigCross500K-like",
                     gen::BigCrossLike(5, bench::Scaled(4000)));
  // A stress case: heavy-tailed KDD-like data, where dense points have many
  // d_c-neighbors. Lemma 1 models the co-slotting probability through one
  // worst-case neighbor at distance d_c; with k neighbors the max projection
  // gap grows ~ d_c * sqrt(2 ln k), so the model is OPTIMISTIC here and
  // measured tau1 falls below the target. The paper's Fig. 9 data set does
  // not trigger this regime; this table documents the model's boundary.
  AccuracyModelTable("KDD-like (heavy-tailed stress)",
                     gen::KddLike(3, bench::Scaled(2500)));
  std::printf(
      "\nReading: the model is realized on the Fig. 9-style workload and is\n"
      "optimistic for points with very many d_c-neighbors (heavy tails) --\n"
      "the accuracy knob remains monotone there, but the guarantee is not a\n"
      "strict per-point bound.\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

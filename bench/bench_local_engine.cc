#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/local_dp.h"
#include "dataset/generators.h"

/// \file bench_local_engine.cc
/// Sweeps the LocalDpEngine backends over group size x dimensionality,
/// reporting wall time and counted distance evaluations for the local
/// rho + delta kernels. This is the per-reducer cost model behind every
/// algorithm layer: the crossover points here justify the kAuto heuristic
/// (k-d tree for large low-dimensional groups, centroid-projection triangle
/// filtering for large high-dimensional groups, brute force for small ones).
/// All backends produce bit-identical scores; only their costs differ.

namespace ddp {
namespace {

using bench::HumanCount;
using bench::Scaled;

struct Cell {
  double rho_seconds = 0.0;
  double delta_seconds = 0.0;
  uint64_t evals = 0;
};

Cell MeasureBackend(const Dataset& ds, double dc, LocalDpBackend backend) {
  LocalDpEngineOptions options;
  options.backend = backend;
  LocalDpEngine engine(options);
  LocalPointView view = LocalPointView::AllOf(ds);
  DistanceCounter counter;
  CountingMetric metric(&counter);
  Cell cell;
  Stopwatch rho_timer;
  std::vector<uint32_t> rho =
      engine.Rho(view, dc, DensityKernel::kCutoff, metric);
  cell.rho_seconds = rho_timer.ElapsedSeconds();
  Stopwatch delta_timer;
  LocalDeltaScores delta = engine.Delta(view, rho, metric);
  cell.delta_seconds = delta_timer.ElapsedSeconds();
  cell.evals = counter.value();
  (void)delta;
  return cell;
}

int Run() {
  bench::QuietLogs quiet;
  bench::Banner("LocalDpEngine backend sweep: group size x dim",
                "the per-bucket/cell/block kernel cost model");
  const LocalDpBackend backends[] = {LocalDpBackend::kBruteForce,
                                     LocalDpBackend::kKdTree,
                                     LocalDpBackend::kTriangleFilter};
  std::printf("%8s %5s | %-9s %12s %10s %10s %8s\n", "group", "dim", "backend",
              "dist evals", "rho ms", "delta ms", "vs brute");
  for (size_t dim : {2u, 8u, 32u}) {
    for (size_t base_n : {128u, 512u, 2048u, 8192u}) {
      const size_t n = Scaled(base_n);
      auto ds = gen::GaussianMixture(n, dim, 4, 30.0, 3.0, 91 + dim + base_n);
      ds.status().Abort("generate");
      // d_c sized to give each point a modest neighborhood.
      const double dc = 3.0;
      uint64_t brute_evals = 0;
      for (LocalDpBackend backend : backends) {
        Cell cell = MeasureBackend(*ds, dc, backend);
        if (backend == LocalDpBackend::kBruteForce) brute_evals = cell.evals;
        const double ratio =
            brute_evals > 0 ? static_cast<double>(cell.evals) /
                                  static_cast<double>(brute_evals)
                            : 1.0;
        std::printf("%8zu %5zu | %-9s %12s %10.3f %10.3f %7.2fx\n", n, dim,
                    LocalDpBackendName(backend), HumanCount(cell.evals).c_str(),
                    cell.rho_seconds * 1e3, cell.delta_seconds * 1e3, ratio);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "kAuto picks: kdtree when n >= 256 and dim <= 16, triangle when\n"
      "n >= 512 otherwise, brute below those floors.\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Run(); }

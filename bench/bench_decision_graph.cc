// Reproduces Fig. 7: the decision graphs of Basic-DDP (exact) and LSH-DDP
// (approximate, A = 0.99, M = 10, pi = 3) on the S2-like 2-D data set, plus
// the Fig. 8-style comparison of their final cluster assignments.
//
// Paper's findings to check:
//  * both graphs expose the same number of selectable peaks (15 for S2);
//  * some LSH-DDP deltas saturate at the top of the chart (local absolute
//    peaks whose delta_hat = +inf was rectified to the max);
//  * the final clusterings are almost identical.
//
// The full graphs are written to /tmp/ddp_decision_graph_{basic,lsh}.tsv for
// external plotting.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "bench/bench_util.h"
#include "core/assignment.h"
#include "core/decision_graph.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/lsh_ddp.h"
#include "eval/metrics.h"

namespace ddp {
namespace {

void DumpTsv(const char* path, const DecisionGraph& graph) {
  std::ofstream out(path);
  out << graph.ToTsv();
  std::printf("  full decision graph written to %s\n", path);
}

int Main() {
  bench::QuietLogs quiet;
  bench::Banner("Decision graphs: Basic-DDP vs LSH-DDP on S2", "Fig. 7");

  const size_t n = bench::Scaled(5000);
  Dataset ds = std::move(gen::S2Like(7, n)).ValueOrDie();
  std::printf("S2-like data set: %zu points, 15 gaussian clusters\n", ds.size());

  CountingMetric metric;
  CutoffOptions cutoff_opts;
  cutoff_opts.percentile = 0.02;
  double dc = std::move(ChooseCutoff(ds, metric, cutoff_opts)).ValueOrDie();
  std::printf("d_c = %.1f (2%% percentile)\n", dc);

  mr::Options mr_options;
  DpScores basic_scores, lsh_scores;
  BasicDdp basic;
  bench::MeasureScores(&basic, ds, dc, mr_options, &basic_scores);
  LshDdp::Params lsh_params;
  lsh_params.accuracy = 0.99;
  lsh_params.lsh.num_layouts = 10;
  lsh_params.lsh.pi = 3;
  LshDdp lsh(lsh_params);
  bench::MeasureScores(&lsh, ds, dc, mr_options, &lsh_scores);

  DecisionGraph basic_graph = DecisionGraph::FromScores(basic_scores);
  DecisionGraph lsh_graph = DecisionGraph::FromScores(lsh_scores);
  DumpTsv("/tmp/ddp_decision_graph_basic.tsv", basic_graph);
  DumpTsv("/tmp/ddp_decision_graph_lsh.tsv", lsh_graph);

  // Count saturated (formerly infinite) deltas in each graph.
  size_t basic_inf = 0, lsh_inf = 0;
  for (double d : basic_scores.delta) basic_inf += std::isinf(d) ? 1 : 0;
  for (double d : lsh_scores.delta) lsh_inf += std::isinf(d) ? 1 : 0;
  std::printf(
      "\npoints at the top of the chart (delta = +inf before rectify):\n"
      "  Basic-DDP: %zu (the absolute peak)\n"
      "  LSH-DDP:   %zu (absolute peak + unresolved local peaks, Sec. IV-C)\n",
      basic_inf, lsh_inf);

  // Peak selection: top-15 by gamma on both graphs.
  auto basic_peaks = basic_graph.SelectTopK(15);
  auto lsh_peaks = lsh_graph.SelectTopK(15);
  std::set<PointId> b(basic_peaks.begin(), basic_peaks.end());
  size_t common = 0;
  for (PointId p : lsh_peaks) common += b.count(p);
  std::printf("\npeaks selected (top-15 by gamma): overlap %zu / 15\n", common);

  // Final clusterings.
  ClusterResult basic_clusters =
      std::move(AssignClusters(ds, basic_scores, basic_peaks, metric))
          .ValueOrDie();
  ClusterResult lsh_clusters =
      std::move(AssignClusters(ds, lsh_scores, lsh_peaks, metric)).ValueOrDie();
  double agreement = std::move(eval::AdjustedRandIndex(
                                   basic_clusters.assignment,
                                   lsh_clusters.assignment))
                         .ValueOrDie();
  double basic_ari = std::move(eval::AdjustedRandIndex(
                                   basic_clusters.assignment, ds.labels()))
                         .ValueOrDie();
  double lsh_ari = std::move(eval::AdjustedRandIndex(lsh_clusters.assignment,
                                                     ds.labels()))
                       .ValueOrDie();
  std::printf(
      "\ncluster agreement (ARI): Basic vs LSH = %.4f\n"
      "vs ground truth:        Basic = %.4f, LSH = %.4f\n",
      agreement, basic_ari, lsh_ari);
  std::printf(
      "\nExpected shape (paper): same peak count; LSH deltas saturate at the\n"
      "top; cluster results almost identical (differences at boundaries).\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

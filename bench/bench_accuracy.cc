// Reproduces Fig. 9: measured accuracy (tau1, tau2) of LSH-DDP's rho
// approximation as the expected accuracy target A sweeps from 0.5 to 0.99,
// on the BigCross500K-like data set (scaled).
//
// Paper's findings to check: tau1 tracks the diagonal (the accuracy model is
// realized), tau2 >= tau1, and both approach 1 as A -> 1.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/cutoff.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/lsh_ddp.h"
#include "eval/tau.h"
#include "lsh/tuning.h"

namespace ddp {
namespace {

int Main() {
  bench::QuietLogs quiet;
  bench::Banner("LSH-DDP accuracy realization: tau1/tau2 vs target A",
                "Fig. 9(a) and 9(b)");

  const size_t n = bench::Scaled(4000);
  Dataset ds = std::move(gen::BigCrossLike(5, n)).ValueOrDie();
  std::printf("BigCross500K-like data set: %zu points, %zu dims\n", ds.size(),
              ds.dim());

  CountingMetric metric;
  double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();
  std::vector<uint32_t> exact_rho =
      std::move(ComputeExactRho(ds, dc, metric)).ValueOrDie();

  std::printf("d_c = %.4f\n\n", dc);
  std::printf("%8s %10s %8s %8s %8s\n", "A", "width", "tau1", "tau2",
              "tau1-A");

  const size_t kLayouts = 10, kPi = 3;  // paper's Sec. VI-C setting
  for (double accuracy : {0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99}) {
    LshDdp::Params params;
    params.accuracy = accuracy;
    params.lsh.num_layouts = kLayouts;
    params.lsh.pi = kPi;
    params.seed = 7;
    LshDdp algo(params);
    DpScores scores;
    bench::MeasureScores(&algo, ds, dc, mr::Options{}, &scores);
    double tau1 = std::move(eval::Tau1(scores.rho, exact_rho)).ValueOrDie();
    double tau2 = std::move(eval::Tau2(scores.rho, exact_rho)).ValueOrDie();
    double width =
        std::move(lsh::SolveMinimalWidth(accuracy, kLayouts, kPi, dc))
            .ValueOrDie();
    std::printf("%8.2f %10.3f %8.4f %8.4f %+8.4f\n", accuracy, width, tau1,
                tau2, tau1 - accuracy);
  }
  std::printf(
      "\nExpected shape (paper): tau1 tracks the diagonal (tau1 ~= A);\n"
      "tau2 >= tau1; both approach 1 as A approaches 1.\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"
#include "ddp/driver.h"
#include "mapreduce/counters.h"
#include "obs/proc_stats.h"
#include "obs/session.h"

/// \file bench_util.h
/// Shared helpers for the experiment harnesses in bench/. Each bench binary
/// regenerates one table or figure of the paper at a laptop-friendly scale;
/// set DDP_BENCH_SCALE (a positive double, default 1.0) to scale every
/// dataset size, e.g. DDP_BENCH_SCALE=4 for a longer, higher-fidelity run.

namespace ddp {
namespace bench {

/// Dataset scale multiplier from the environment.
inline double ScaleFromEnv() {
  const char* s = std::getenv("DDP_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

inline size_t Scaled(size_t n) {
  return static_cast<size_t>(static_cast<double>(n) * ScaleFromEnv());
}

/// One algorithm run's cost triple (the paper's three evaluation axes),
/// plus the out-of-core counters when a memory budget is set.
struct CostReport {
  double seconds = 0.0;
  uint64_t shuffle_bytes = 0;
  uint64_t distance_evaluations = 0;
  uint64_t spilled_bytes = 0;
  uint64_t spill_files = 0;
  uint64_t merge_passes = 0;
};

/// Runs `algorithm` on `dataset` with a fixed d_c and returns costs.
inline CostReport MeasureScores(DistributedDpAlgorithm* algorithm,
                                const Dataset& dataset, double dc,
                                const mr::Options& mr_options,
                                DpScores* scores_out = nullptr) {
  DistanceCounter counter;
  CountingMetric metric(&counter);
  mr::RunStats stats;
  Stopwatch timer;
  auto scores = algorithm->ComputeScores(dataset, dc, metric, mr_options,
                                         &stats);
  scores.status().Abort(algorithm->name());
  CostReport report;
  report.seconds = timer.ElapsedSeconds();
  report.shuffle_bytes = stats.TotalShuffleBytes();
  report.distance_evaluations = counter.value();
  report.spilled_bytes = stats.TotalSpilledBytes();
  report.spill_files = stats.TotalSpillFiles();
  report.merge_passes = stats.TotalMergePasses();
  if (scores_out != nullptr) *scores_out = std::move(scores).value();
  return report;
}

/// "12.3 MB"-style human formatting.
inline std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 1ull << 30) {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= 1ull << 20) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= 1ull << 10) {
    std::snprintf(buf, sizeof(buf), "%.2f KB",
                  static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

inline std::string HumanCount(uint64_t count) {
  char buf[32];
  if (count >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fG",
                  static_cast<double>(count) / 1e9);
  } else if (count >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fM",
                  static_cast<double>(count) / 1e6);
  } else if (count >= 1000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fK",
                  static_cast<double>(count) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(count));
  }
  return buf;
}

/// Peak resident set size of this process in bytes, or 0 where procfs is
/// unavailable. Thin alias for the obs subsystem's sampler, kept so bench
/// code reads as bench::PeakRssBytes().
inline uint64_t PeakRssBytes() { return obs::PeakRssBytes(); }

/// Observability export for bench binaries: set DDP_TRACE_OUT and/or
/// DDP_METRICS_OUT to get a Perfetto trace / metrics snapshot of the run.
/// Declare one at the top of main(); files are written at destruction.
struct ObsFromEnv {
  obs::Session session{obs::Session::FromEnv()};
};

/// Prints a figure/table banner.
inline void Banner(const char* what, const char* paper_ref) {
  std::printf("\n=================================================================\n");
  std::printf("%s\n  (reproduces %s)\n", what, paper_ref);
  std::printf("=================================================================\n");
}

/// Quiet logging for benches.
struct QuietLogs {
  QuietLogs() { SetLogLevel(LogLevel::kWarning); }
};

}  // namespace bench
}  // namespace ddp


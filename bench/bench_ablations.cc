// Ablation studies for the design choices DESIGN.md calls out (beyond the
// paper's own figures):
//
//  (a) rho aggregation operator: the paper picks max over layouts (each local
//      estimate undercounts); compare against mean and single-layout.
//  (b) combiners: shuffle volume of the aggregation jobs with the map-side
//      combiner disabled (re-run of job 2/4 equivalents via counters).
//  (c) Basic-DDP block size: shuffle copies vs reducer work trade-off.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/cutoff.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/lsh_ddp.h"
#include "eval/tau.h"
#include "lsh/partitioner.h"
#include "lsh/tuning.h"

namespace ddp {
namespace {

// (a) Aggregation operator ablation, computed directly from the per-layout
// local rho values (bypassing the MR pipeline for clarity).
void AggregationOperatorAblation(const Dataset& ds, double dc,
                                 const std::vector<uint32_t>& exact_rho) {
  std::printf("(a) rho aggregation operator (M=10, pi=3, A=0.99)\n");
  CountingMetric metric;
  double width =
      std::move(lsh::SolveMinimalWidth(0.99, 10, 3, dc)).ValueOrDie();
  auto part =
      std::move(lsh::MultiLshPartitioner::Create(ds.dim(), 10, 3, width, 7))
          .ValueOrDie();
  auto layouts = part.PartitionAll(ds);
  std::vector<std::vector<uint32_t>> per_layout(
      layouts.size(), std::vector<uint32_t>(ds.size(), 0));
  for (size_t m = 0; m < layouts.size(); ++m) {
    for (const auto& [key, ids] : layouts[m]) {
      LocalDpResult local = ComputeLocalRho(ds, ids, dc, metric);
      for (size_t k = 0; k < ids.size(); ++k) {
        per_layout[m][ids[k]] = local.rho[k];
      }
    }
  }
  std::vector<uint32_t> agg_max(ds.size(), 0), agg_single(ds.size(), 0);
  std::vector<uint32_t> agg_mean(ds.size(), 0);
  for (size_t i = 0; i < ds.size(); ++i) {
    uint64_t sum = 0;
    for (size_t m = 0; m < layouts.size(); ++m) {
      agg_max[i] = std::max(agg_max[i], per_layout[m][i]);
      sum += per_layout[m][i];
    }
    agg_single[i] = per_layout[0][i];
    agg_mean[i] = static_cast<uint32_t>(sum / layouts.size());
  }
  auto report = [&](const char* name, const std::vector<uint32_t>& rho) {
    double tau1 = std::move(eval::Tau1(rho, exact_rho)).ValueOrDie();
    double tau2 = std::move(eval::Tau2(rho, exact_rho)).ValueOrDie();
    std::printf("  %-16s tau1=%.4f tau2=%.4f\n", name, tau1, tau2);
  };
  report("max (paper)", agg_max);
  report("mean", agg_mean);
  report("single layout", agg_single);
  std::printf(
      "  => max dominates: every local estimate is a lower bound, so the\n"
      "     tightest lower bound is the best estimator.\n\n");
}

// (b) Combiner ablation: measure the rho-aggregation job's shuffle with and
// without a max combiner by running the same aggregation through RunJob.
void CombinerAblation(const Dataset& ds, double dc) {
  std::printf("(b) map-side combiner on the rho aggregation job\n");
  CountingMetric metric;
  LshDdp::Params params;
  params.accuracy = 0.99;
  params.lsh.num_layouts = 10;
  params.lsh.pi = 3;
  LshDdp algo(params);
  mr::RunStats stats;
  DistanceCounter counter;
  auto scores = algo.ComputeScores(ds, dc, CountingMetric(&counter),
                                   mr::Options{}, &stats);
  scores.status().Abort("lsh");
  // Job 1 output feeds job 2: job 2's input records = M * N pairs; with the
  // combiner the shuffled records collapse to ~(#map tasks) * distinct ids.
  const mr::JobCounters& agg = stats.jobs[1];
  std::printf(
      "  with combiner (production): in=%llu shuffled=%llu records (%s)\n",
      static_cast<unsigned long long>(agg.combine_input_records),
      static_cast<unsigned long long>(agg.shuffle_records),
      bench::HumanBytes(agg.shuffle_bytes).c_str());

  // Re-run the aggregation without a combiner.
  using RhoOut = std::pair<PointId, uint32_t>;
  std::vector<RhoOut> inputs;
  inputs.reserve(ds.size() * 10);
  // Rebuild job-1 outputs from per-layout local computation.
  double width =
      std::move(lsh::SolveMinimalWidth(0.99, 10, 3, dc)).ValueOrDie();
  auto part =
      std::move(lsh::MultiLshPartitioner::Create(ds.dim(), 10, 3, width, 7))
          .ValueOrDie();
  for (const auto& layout : part.PartitionAll(ds)) {
    for (const auto& [key, ids] : layout) {
      LocalDpResult local = ComputeLocalRho(ds, ids, dc, metric);
      for (size_t k = 0; k < ids.size(); ++k) {
        inputs.push_back({ids[k], local.rho[k]});
      }
    }
  }
  mr::JobSpec<RhoOut, PointId, uint32_t, RhoOut> spec;
  spec.name = "rho-agg-nocombiner";
  spec.map = [](const RhoOut& in, mr::Emitter<PointId, uint32_t>* out) {
    out->Emit(in.first, in.second);
  };
  spec.reduce = [](const PointId& id, std::span<const uint32_t> values,
                   std::vector<RhoOut>* out) {
    uint32_t best = 0;
    for (uint32_t v : values) best = std::max(best, v);
    out->push_back({id, best});
  };
  mr::JobCounters counters;
  auto result = mr::RunJob(spec, std::span<const RhoOut>(inputs), mr::Options{},
                           &counters);
  result.status().Abort("no-combiner aggregation");
  std::printf("  without combiner:           in=%llu shuffled=%llu records (%s)\n",
              static_cast<unsigned long long>(counters.map_input_records),
              static_cast<unsigned long long>(counters.shuffle_records),
              bench::HumanBytes(counters.shuffle_bytes).c_str());
  std::printf("  => the combiner removes the M-fold duplication before the\n"
              "     shuffle, as in Hadoop.\n\n");
}

// (c) Basic-DDP block-size sweep.
void BlockSizeAblation(const Dataset& ds, double dc) {
  std::printf("(c) Basic-DDP block size (shuffle copies vs reducer balance)\n");
  std::printf("  %10s %10s %12s %12s\n", "block", "seconds", "shuffled",
              "# dist");
  for (size_t block : {100ul, 250ul, 500ul, 1000ul, 2000ul}) {
    BasicDdp::Params params;
    params.block_size = block;
    BasicDdp algo(params);
    bench::CostReport cost = bench::MeasureScores(&algo, ds, dc, mr::Options{});
    std::printf("  %10zu %10.2f %12s %12s\n", block, cost.seconds,
                bench::HumanBytes(cost.shuffle_bytes).c_str(),
                bench::HumanCount(cost.distance_evaluations).c_str());
  }
  std::printf(
      "  => distance count is block-size invariant (exact all-pairs); the\n"
      "     shuffle grows as ~(n_blocks/2 + 1) copies per point, so larger\n"
      "     blocks shuffle less but parallelize worse.\n");
}

// (d) Multi-probe LSH: recall (tau2) and shuffle as probes replace layouts.
void MultiProbeAblation(const Dataset& ds, double dc,
                        const std::vector<uint32_t>& exact_rho) {
  std::printf("(d) multi-probe LSH (tau2 and shuffle vs (M, probes))\n");
  std::printf("  %4s %7s %10s %14s %12s\n", "M", "probes", "tau2",
              "shuffle", "# dist");
  CountingMetric unused;
  for (auto [layouts, probes] :
       {std::pair<size_t, size_t>{10, 0}, {5, 0}, {5, 1}, {5, 2}, {3, 2}}) {
    LshDdp::Params params;
    params.accuracy = 0.9;
    params.lsh.num_layouts = layouts;
    params.lsh.pi = 3;
    params.probes = probes;
    LshDdp algo(params);
    DistanceCounter counter;
    mr::RunStats stats;
    auto scores = algo.ComputeScores(ds, dc, CountingMetric(&counter),
                                     mr::Options{}, &stats);
    scores.status().Abort("lsh multi-probe");
    double tau2 =
        std::move(eval::Tau2(scores->rho, exact_rho)).ValueOrDie();
    std::printf("  %4zu %7zu %10.4f %14s %12s\n", layouts, probes, tau2,
                bench::HumanBytes(stats.TotalShuffleBytes()).c_str(),
                bench::HumanCount(counter.value()).c_str());
  }
  std::printf(
      "  => probing boundary-adjacent buckets recovers recall with fewer\n"
      "     layouts: an alternative point on the accuracy/shuffle curve.\n\n");
}

// (e) k-d tree accelerator for the sequential rho kernel across dimensions.
void KdTreeAblation() {
  std::printf("(e) k-d tree rho accelerator (distance evals, exact results)\n");
  std::printf("  %-12s %5s %12s %12s %8s\n", "data", "dim", "scan",
              "kdtree", "save");
  struct Case {
    const char* name;
    Result<Dataset> ds;
  };
  Case cases[] = {
      {"3Dspatial", gen::SpatialLike(3, bench::Scaled(3000))},
      {"KDD(74d)", gen::KddLike(3, bench::Scaled(1500))},
      {"Facial(300d)", gen::FacialLike(3, bench::Scaled(800))},
  };
  for (Case& c : cases) {
    Dataset ds = std::move(c.ds).ValueOrDie();
    CountingMetric unused;
    double dc = std::move(ChooseCutoff(ds, unused)).ValueOrDie();
    DistanceCounter scan_counter, tree_counter;
    SequentialDpOptions scan, tree;
    tree.use_kdtree_rho = true;
    auto a = ComputeExactRho(ds, dc, CountingMetric(&scan_counter), scan);
    auto b = ComputeExactRho(ds, dc, CountingMetric(&tree_counter), tree);
    a.status().Abort("scan rho");
    b.status().Abort("tree rho");
    DDP_CHECK(*a == *b);
    std::printf("  %-12s %5zu %12s %12s %7.1fx\n", c.name, ds.dim(),
                bench::HumanCount(scan_counter.value()).c_str(),
                bench::HumanCount(tree_counter.value()).c_str(),
                static_cast<double>(scan_counter.value()) /
                    static_cast<double>(tree_counter.value()));
  }
  std::printf(
      "  => big savings in low dimensions, fading as dimensionality grows\n"
      "     (the curse of dimensionality, as expected for k-d trees).\n");
}

int Main() {
  bench::QuietLogs quiet;
  bench::Banner("Design-choice ablations", "DESIGN.md ablation index");
  const size_t n = bench::Scaled(2500);
  Dataset ds = std::move(gen::KddLike(19, n)).ValueOrDie();
  CountingMetric metric;
  double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();
  std::vector<uint32_t> exact_rho =
      std::move(ComputeExactRho(ds, dc, metric)).ValueOrDie();
  std::printf("KDD-like: %zu points, d_c = %.3f\n\n", ds.size(), dc);
  AggregationOperatorAblation(ds, dc, exact_rho);
  CombinerAblation(ds, dc);
  BlockSizeAblation(ds, dc);
  MultiProbeAblation(ds, dc, exact_rho);
  KdTreeAblation();
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

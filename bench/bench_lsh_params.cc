// Reproduces Fig. 12(a) and 12(b): the effect of the LSH parameters M
// (number of layouts) and pi (hash functions per group) on LSH-DDP's runtime
// and on the accuracy metric tau2, at fixed expected accuracy A = 0.99, on
// the BigCross500K-like data set.
//
// Paper's findings to check:
//  * for small pi, runtime grows with M; for large pi (20) the trend
//    reverses because small-M/large-pi partitions are skewed;
//  * tau2 is unexpectedly low for M < 5 and stable (~0.99) for M >= 5;
//  * recommended operating range: M in [10, 20], pi in [3, 10].

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/cutoff.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/lsh_ddp.h"
#include "eval/tau.h"

namespace ddp {
namespace {

int Main() {
  bench::QuietLogs quiet;
  bench::Banner("Effect of LSH parameters M and pi (A = 0.99)",
                "Fig. 12(a) runtime, 12(b) tau2");

  const size_t n = bench::Scaled(3000);
  Dataset ds = std::move(gen::BigCrossLike(5, n)).ValueOrDie();
  CountingMetric metric;
  double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();
  std::vector<uint32_t> exact_rho =
      std::move(ComputeExactRho(ds, dc, metric)).ValueOrDie();
  std::printf("BigCross500K-like: %zu points, d_c = %.3f\n\n", ds.size(), dc);

  const std::vector<size_t> kMs = {1, 2, 5, 10, 15, 20};
  const std::vector<size_t> kPis = {3, 10, 20};

  std::printf("Fig 12(a): runtime (seconds)\n%6s", "M");
  for (size_t pi : kPis) std::printf("   pi=%-6zu", pi);
  std::printf("\n");
  // Cache runs so the tau2 table reuses them.
  std::vector<std::vector<double>> runtime(kMs.size(),
                                           std::vector<double>(kPis.size()));
  std::vector<std::vector<double>> tau2(kMs.size(),
                                        std::vector<double>(kPis.size()));
  for (size_t mi = 0; mi < kMs.size(); ++mi) {
    std::printf("%6zu", kMs[mi]);
    for (size_t pj = 0; pj < kPis.size(); ++pj) {
      LshDdp::Params params;
      params.accuracy = 0.99;
      params.lsh.num_layouts = kMs[mi];
      params.lsh.pi = kPis[pj];
      params.seed = 17;
      LshDdp algo(params);
      DpScores scores;
      bench::CostReport cost =
          bench::MeasureScores(&algo, ds, dc, mr::Options{}, &scores);
      runtime[mi][pj] = cost.seconds;
      tau2[mi][pj] = std::move(eval::Tau2(scores.rho, exact_rho)).ValueOrDie();
      std::printf(" %10.2f", cost.seconds);
    }
    std::printf("\n");
  }

  std::printf("\nFig 12(b): accuracy tau2\n%6s", "M");
  for (size_t pi : kPis) std::printf("   pi=%-6zu", pi);
  std::printf("\n");
  for (size_t mi = 0; mi < kMs.size(); ++mi) {
    std::printf("%6zu", kMs[mi]);
    for (size_t pj = 0; pj < kPis.size(); ++pj) {
      std::printf(" %10.4f", tau2[mi][pj]);
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected shape (paper): runtime grows with M at pi=3 but the trend\n"
      "flattens/reverses at pi=20 (skewed small-M partitions); tau2 low for\n"
      "M < 5, stable ~0.99 for M >= 5. Recommended M in [10,20], pi in\n"
      "[3,10].\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

// Measures the observability subsystem's own cost, backing the "zero-cost
// when disabled" contract in docs/observability.md:
//
//   * span, compiled out   — DDP_OBS_NO_TRACING macro path (bench_obs_noop.cc)
//   * span, disabled       — default production state: one relaxed atomic
//                            load per span, expected within noise of the
//                            compiled-out loop
//   * span, enabled        — full record: two clock reads + one buffered event
//   * counter add          — always-on metric increment
//   * histogram record     — always-on latency bucket increment
//
// Also dumps a tiny enabled-trace event count so the recorder path is
// exercised end to end.

#include <cstdio>

#include "bench/bench_obs_loops.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ddp {
namespace {

constexpr size_t kIters = 2000000;

uint64_t SpanLoop(size_t iters) {
  uint64_t acc = 0;
  for (size_t i = 0; i < iters; ++i) {
    DDP_TRACE_SPAN(span, "bench", "probe");
    acc += i;
    asm volatile("" : "+r"(acc));
  }
  return acc;
}

uint64_t CounterLoop(size_t iters) {
  uint64_t acc = 0;
  for (size_t i = 0; i < iters; ++i) {
    DDP_METRIC_COUNTER_ADD("bench.obs_probe", 1);
    acc += i;
    asm volatile("" : "+r"(acc));
  }
  return acc;
}

uint64_t HistogramLoop(size_t iters) {
  uint64_t acc = 0;
  for (size_t i = 0; i < iters; ++i) {
    DDP_METRIC_HISTOGRAM_RECORD("bench.obs_probe_hist", i & 1023u);
    acc += i;
    asm volatile("" : "+r"(acc));
  }
  return acc;
}

double NsPerOp(double seconds, size_t iters) {
  return seconds * 1e9 / static_cast<double>(iters);
}

int Main() {
  bench::QuietLogs quiet;
  bench::Banner("Observability overhead: spans and metrics",
                "docs/observability.md cost model");

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Disable();
  recorder.Clear();

  // Warm up the caches/branch predictors once before timing.
  SpanLoop(kIters / 10);
  bench_obs::SpanLoopCompiledOut(kIters / 10);

  Stopwatch t1;
  bench_obs::SpanLoopCompiledOut(kIters);
  const double compiled_out = t1.ElapsedSeconds();

  Stopwatch t2;
  SpanLoop(kIters);
  const double disabled = t2.ElapsedSeconds();

  // Enabled spans buffer a ~100-byte event each; keep the count modest.
  const size_t enabled_iters = kIters / 10;
  recorder.SetMaxEvents(enabled_iters + 16);
  recorder.Enable();
  Stopwatch t3;
  SpanLoop(enabled_iters);
  const double enabled = t3.ElapsedSeconds();
  recorder.Disable();
  const size_t recorded = recorder.Snapshot().size();
  recorder.Clear();
  recorder.SetMaxEvents(1000000);

  Stopwatch t4;
  CounterLoop(kIters);
  const double counter = t4.ElapsedSeconds();

  Stopwatch t5;
  HistogramLoop(kIters);
  const double histogram = t5.ElapsedSeconds();

  std::printf("%-22s %10s\n", "case", "ns/op");
  std::printf("%-22s %10.2f\n", "span, compiled out",
              NsPerOp(compiled_out, kIters));
  std::printf("%-22s %10.2f\n", "span, disabled", NsPerOp(disabled, kIters));
  std::printf("%-22s %10.2f   (%zu events recorded)\n", "span, enabled",
              NsPerOp(enabled, enabled_iters), recorded);
  std::printf("%-22s %10.2f\n", "counter add", NsPerOp(counter, kIters));
  std::printf("%-22s %10.2f\n", "histogram record",
              NsPerOp(histogram, kIters));

  std::printf(
      "\nExpected shape: disabled spans within a few ns of the compiled-out\n"
      "loop (one relaxed load), metrics in the single-digit ns range.\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

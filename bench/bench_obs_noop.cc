// Compiled with -DDDP_OBS_NO_TRACING (see CMakeLists.txt): the span macros
// in this translation unit expand to nothing, so SpanLoopCompiledOut is the
// "instrumentation compiled out" baseline bench_obs compares against.

#include "bench/bench_obs_loops.h"

#include "obs/trace.h"

namespace ddp {
namespace bench_obs {

uint64_t SpanLoopCompiledOut(size_t iters) {
  uint64_t acc = 0;
  for (size_t i = 0; i < iters; ++i) {
    DDP_TRACE_SPAN(span, "bench", "noop");
    acc += i;
    asm volatile("" : "+r"(acc));
  }
  return acc;
}

}  // namespace bench_obs
}  // namespace ddp

// Reproduces the Sec. VI-D "Clustering Large Data Set on EC2" experiment and
// Fig. 11: on the largest BigCross-like data set, (a) the Basic-DDP vs
// LSH-DDP runtime gap (the paper reports 91.2h vs 1.3h = 70x on 11.6M
// points) and (b) per-iteration MapReduce K-means runtime, locating which
// iteration count LSH-DDP's total runtime corresponds to (paper: ~24).
//
// Basic-DDP's quadratic full run is projected from a calibration subset so
// the bench stays laptop-sized; the calibration method is printed.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/cutoff.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/lsh_ddp.h"
#include "ddp/mr_kmeans.h"
#include "ddp/records.h"

namespace ddp {
namespace {

int Main() {
  bench::QuietLogs quiet;
  bench::ObsFromEnv obs;
  bench::Banner("Large-scale BigCross run + K-means iteration comparison",
                "Sec. VI-D EC2 experiment + Fig. 11");

  const size_t n = bench::Scaled(40000);
  Dataset ds = std::move(gen::BigCrossLike(13, n)).ValueOrDie();
  CountingMetric metric;
  double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();
  std::printf("BigCross-like: %zu points, %zu dims, d_c = %.3f\n\n", ds.size(),
              ds.dim(), dc);

  // LSH-DDP full run.
  LshDdp::Params lp;
  lp.accuracy = 0.99;
  lp.lsh.num_layouts = 10;
  lp.lsh.pi = 3;
  LshDdp lsh(lp);
  bench::CostReport lsh_cost = bench::MeasureScores(&lsh, ds, dc, mr::Options{});
  std::printf("LSH-DDP: %.2f s, %s shuffled, %s distances\n", lsh_cost.seconds,
              bench::HumanBytes(lsh_cost.shuffle_bytes).c_str(),
              bench::HumanCount(lsh_cost.distance_evaluations).c_str());

  // Out-of-core configuration: the same LSH-DDP run under a memory budget
  // small enough that every map task spills, so the whole pipeline goes
  // through sorted-run spill files and the streaming k-way merge. Emitted as
  // BENCH_oocore.json so the perf trajectory of the spill path is machine
  // trackable.
  {
    mr::Options oocore;
    oocore.memory_budget_bytes = 64 << 10;
    bench::CostReport oo_cost = bench::MeasureScores(&lsh, ds, dc, oocore);
    double points_per_sec =
        oo_cost.seconds > 0.0
            ? static_cast<double>(ds.size()) / oo_cost.seconds
            : 0.0;
    uint64_t peak_rss = bench::PeakRssBytes();
    std::printf(
        "LSH-DDP out-of-core (%s budget): %.2f s (%.2fx in-memory),\n"
        "  %s spilled across %llu files, %llu merge passes, peak RSS %s\n",
        bench::HumanBytes(oocore.memory_budget_bytes).c_str(), oo_cost.seconds,
        lsh_cost.seconds > 0.0 ? oo_cost.seconds / lsh_cost.seconds : 0.0,
        bench::HumanBytes(oo_cost.spilled_bytes).c_str(),
        static_cast<unsigned long long>(oo_cost.spill_files),
        static_cast<unsigned long long>(oo_cost.merge_passes),
        bench::HumanBytes(peak_rss).c_str());
    std::FILE* json = std::fopen("BENCH_oocore.json", "w");
    if (json != nullptr) {
      std::fprintf(
          json,
          "{\n"
          "  \"bench\": \"lsh_ddp_out_of_core\",\n"
          "  \"points\": %zu,\n"
          "  \"dims\": %zu,\n"
          "  \"memory_budget_bytes\": %llu,\n"
          "  \"seconds\": %.6f,\n"
          "  \"points_per_sec\": %.2f,\n"
          "  \"in_memory_seconds\": %.6f,\n"
          "  \"spilled_bytes\": %llu,\n"
          "  \"spill_files\": %llu,\n"
          "  \"merge_passes\": %llu,\n"
          "  \"peak_rss_bytes\": %llu\n"
          "}\n",
          ds.size(), ds.dim(),
          static_cast<unsigned long long>(oocore.memory_budget_bytes),
          oo_cost.seconds, points_per_sec, lsh_cost.seconds,
          static_cast<unsigned long long>(oo_cost.spilled_bytes),
          static_cast<unsigned long long>(oo_cost.spill_files),
          static_cast<unsigned long long>(oo_cost.merge_passes),
          static_cast<unsigned long long>(peak_rss));
      std::fclose(json);
      std::printf("  wrote BENCH_oocore.json\n");
    }
  }

  // Basic-DDP on a calibration subset, projected quadratically to full N.
  const size_t calib_n = std::min<size_t>(ds.size(), 4000);
  std::vector<PointId> calib_ids(calib_n);
  for (size_t i = 0; i < calib_n; ++i) {
    calib_ids[i] = static_cast<PointId>(i * (ds.size() / calib_n));
  }
  Dataset calib = ds.Subset(calib_ids);
  BasicDdp::Params bp;
  bp.block_size = 500;
  BasicDdp basic(bp);
  bench::CostReport calib_cost =
      bench::MeasureScores(&basic, calib, dc, mr::Options{});
  double scale = static_cast<double>(ds.size()) / static_cast<double>(calib_n);
  double projected_seconds = calib_cost.seconds * scale * scale;
  std::printf(
      "Basic-DDP: measured %.2f s on a %zu-point calibration subset;\n"
      "           projected %.1f s at %zu points (quadratic scaling)\n",
      calib_cost.seconds, calib_n, projected_seconds, ds.size());
  std::printf("==> projected Basic/LSH speedup at this scale: %.0fx\n\n",
              projected_seconds / lsh_cost.seconds);

  // Fig. 11: per-iteration K-means runtime (paper runs 100 iterations; we
  // run enough iterations to pass the LSH-DDP runtime).
  MrKmeansOptions ko;
  ko.k = 20;  // BigCross product-cluster count
  ko.max_iterations = 100;
  ko.convergence_tol = 0.0;
  CountingMetric kmetric;
  // Run iterations until cumulative K-means time exceeds 2x the LSH time or
  // the paper's 100 iterations, whichever first; do it in one call by
  // capping iterations based on a one-iteration probe.
  MrKmeansOptions probe = ko;
  probe.max_iterations = 1;
  auto probe_result = RunMrKmeans(ds, probe, kmetric);
  probe_result.status().Abort("kmeans probe");
  double per_iter = probe_result->iteration_seconds[0];
  size_t iters = static_cast<size_t>(2.0 * lsh_cost.seconds / per_iter) + 2;
  ko.max_iterations = std::min<size_t>(100, std::max<size_t>(iters, 5));
  auto kmeans = RunMrKmeans(ds, ko, kmetric);
  kmeans.status().Abort("kmeans");

  std::printf("MapReduce K-means (k=%zu), per-iteration cumulative runtime:\n",
              ko.k);
  std::printf("%6s %12s %14s\n", "iter", "iter(s)", "cumulative(s)");
  double cumulative = 0.0;
  size_t crossover = 0;
  for (size_t i = 0; i < kmeans->iteration_seconds.size(); ++i) {
    cumulative += kmeans->iteration_seconds[i];
    if (crossover == 0 && cumulative >= lsh_cost.seconds) crossover = i + 1;
    if (i < 5 || (i + 1) % 5 == 0 ||
        i + 1 == kmeans->iteration_seconds.size()) {
      std::printf("%6zu %12.3f %14.3f\n", i + 1, kmeans->iteration_seconds[i],
                  cumulative);
    }
  }
  if (crossover > 0) {
    std::printf(
        "\nmeasured (compute-bound, in-memory runtime): LSH-DDP's %.2f s\n"
        "corresponds to K-means iteration %zu\n",
        lsh_cost.seconds, crossover);
  } else {
    std::printf(
        "\nmeasured (compute-bound, in-memory runtime): K-means did not\n"
        "reach LSH-DDP's %.2f s within %zu iterations\n",
        lsh_cost.seconds, kmeans->iteration_seconds.size());
  }

  // Fig. 11's ~iteration-24 crossover on Hadoop is IO-bound: each K-means
  // iteration re-scans the point set once (the combiner makes its shuffle
  // negligible), while LSH-DDP's dominant IO is shuffling 2M copies of the
  // point set. Express LSH-DDP's shuffle as dataset-scan equivalents — on a
  // cluster where IO dominates, that IS the crossover iteration.
  {
    std::span<const double> p0 = ds.point(0);
    ddprec::PointRecord rec{0, {p0.begin(), p0.end()}};
    double dataset_bytes =
        static_cast<double>(SerializedSize(rec)) *
        static_cast<double>(ds.size());
    double scans = static_cast<double>(lsh_cost.shuffle_bytes) / dataset_bytes;
    std::printf(
        "modeled (IO-bound Hadoop cluster): LSH-DDP shuffles %.1f dataset\n"
        "scans' worth of data ~= K-means iteration %.0f crossover\n"
        "(paper Fig. 11: ~iteration 24 = 2M + aggregation jobs)\n",
        scans, scans);
  }

  std::printf(
      "\nExpected shape (paper): Basic-DDP projected runtime is orders of\n"
      "magnitude above LSH-DDP (70x at 11.6M points); on an IO-bound\n"
      "cluster LSH-DDP's total matches a few dozen K-means iterations.\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

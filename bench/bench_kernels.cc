// Micro-benchmarks (google-benchmark) for the kernels on the critical path:
// p-stable hashing, local rho/delta kernels, serialization, and the
// MapReduce shuffle. These quantify the constants behind the cost model of
// Sec. V (mu, the shuffle-vs-compute time ratio).

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "common/random.h"
#include "common/serde.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/records.h"
#include "lsh/hash_group.h"
#include "mapreduce/mapreduce.h"

namespace ddp {
namespace {

void BM_PStableHash(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(1);
  lsh::PStableHash h = lsh::PStableHash::Random(dim, 4.0, &rng);
  std::vector<double> p = rng.GaussianVector(dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Hash(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PStableHash)->Arg(4)->Arg(57)->Arg(300);

void BM_HashGroupKey(benchmark::State& state) {
  const size_t pi = static_cast<size_t>(state.range(0));
  Rng rng(2);
  lsh::HashGroup g = lsh::HashGroup::Random(57, pi, 4.0, &rng);
  std::vector<double> p = rng.GaussianVector(57);
  lsh::BucketKey key;
  for (auto _ : state) {
    g.KeyInto(p, &key);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_HashGroupKey)->Arg(3)->Arg(10)->Arg(20);

void BM_LocalRhoKernel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Dataset ds = std::move(gen::GaussianMixture(n, 16, 4, 50.0, 2.0, 3))
                   .ValueOrDie();
  std::vector<PointId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  CountingMetric metric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeLocalRho(ds, ids, 5.0, metric));
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1) / 2);
}
BENCHMARK(BM_LocalRhoKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_LocalDeltaKernel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Dataset ds = std::move(gen::GaussianMixture(n, 16, 4, 50.0, 2.0, 3))
                   .ValueOrDie();
  std::vector<PointId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  CountingMetric metric;
  LocalDpResult rho = ComputeLocalRho(ds, ids, 5.0, metric);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeLocalDelta(ds, ids, rho.rho, metric));
  }
}
BENCHMARK(BM_LocalDeltaKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_PointRecordSerde(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(4);
  ddprec::PointRecord rec{123, rng.GaussianVector(dim)};
  for (auto _ : state) {
    BufferWriter w;
    Serde<ddprec::PointRecord>::Write(&w, rec);
    BufferReader r(w.data());
    ddprec::PointRecord out;
    benchmark::DoNotOptimize(Serde<ddprec::PointRecord>::Read(&r, &out));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(dim * sizeof(double)));
}
BENCHMARK(BM_PointRecordSerde)->Arg(4)->Arg(57)->Arg(300);

void BM_MapReduceShuffleThroughput(benchmark::State& state) {
  // End-to-end identity job: measures runtime-per-record of the full
  // serialize/shuffle/sort/deserialize path.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> input(n);
  std::iota(input.begin(), input.end(), 0);
  mr::JobSpec<uint32_t, uint32_t, uint32_t, uint32_t> spec;
  spec.name = "identity";
  spec.map = [](const uint32_t& v, mr::Emitter<uint32_t, uint32_t>* out) {
    out->Emit(v, v);
  };
  spec.reduce = [](const uint32_t&, std::span<const uint32_t> values,
                   std::vector<uint32_t>* out) {
    out->push_back(values[0]);
  };
  mr::Options options;
  options.num_workers = 2;
  for (auto _ : state) {
    auto result = mr::RunJob(spec, std::span<const uint32_t>(input), options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MapReduceShuffleThroughput)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace ddp

BENCHMARK_MAIN();

// Growth-curve study (ours; complements Fig. 10 and the Sec. VI-D scale
// argument): how runtime, shuffle volume, and distance computations of the
// three distributed variants grow as N doubles on a fixed distribution.
//
// Expected shapes: Basic-DDP's distance count is exactly N(N-1); LSH-DDP and
// EDDPC grow with a much smaller quadratic constant (bucket/cell-local); the
// Basic-to-LSH gap widens in absolute terms with N.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/cutoff.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/eddpc.h"
#include "ddp/lsh_ddp.h"

namespace ddp {
namespace {

int Main() {
  bench::QuietLogs quiet;
  bench::Banner("Scaling study: cost growth of the three variants",
                "extension of Fig. 10 / Sec. VI-D");

  std::printf("%8s %-10s %10s %14s %12s\n", "N", "method", "seconds",
              "shuffled", "# dist");
  for (size_t n : {1000ul, 2000ul, 4000ul, 8000ul}) {
    const size_t scaled = bench::Scaled(n);
    Dataset ds = std::move(gen::BigCrossLike(5, scaled)).ValueOrDie();
    CountingMetric metric;
    double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();

    BasicDdp::Params bp;
    bp.block_size = 250;
    BasicDdp basic(bp);
    LshDdp lsh;
    Eddpc eddpc;
    struct Entry {
      const char* label;
      DistributedDpAlgorithm* algo;
    };
    Entry entries[] = {{"basic", &basic}, {"lsh", &lsh}, {"eddpc", &eddpc}};
    for (const Entry& e : entries) {
      bench::CostReport cost =
          bench::MeasureScores(e.algo, ds, dc, mr::Options{});
      std::printf("%8zu %-10s %10.2f %14s %12s\n", scaled, e.label,
                  cost.seconds, bench::HumanBytes(cost.shuffle_bytes).c_str(),
                  bench::HumanCount(cost.distance_evaluations).c_str());
    }
  }
  std::printf(
      "\nExpected shape: Basic-DDP's distance count quadruples per doubling\n"
      "(exact N(N-1)); LSH-DDP and EDDPC grow with far smaller constants, so\n"
      "the absolute gap to Basic-DDP widens with N.\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

// Reproduces Fig. 10(a)-(c): runtime, shuffle volume, and the number of
// distance measurements of Basic-DDP vs LSH-DDP on the four real-world data
// sets (Facial, KDD, 3Dspatial, BigCross500K), all generated at a scaled-down
// size by default (DDP_BENCH_SCALE to enlarge).
//
// Configuration follows Sec. VI-D: A = 0.99, M = 10, pi = 3 for LSH-DDP and
// block size 500 for Basic-DDP.
//
// Paper's findings to check: LSH-DDP wins on all three axes, and the speedup
// factors grow with data set size (1.7-24x runtime, 5-87x shuffle, 1.7-6.1x
// distance computations at full scale).

#include <cstdio>

#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "core/cutoff.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/lsh_ddp.h"

namespace ddp {
namespace {

int Main() {
  bench::QuietLogs quiet;
  bench::ObsFromEnv obs;
  bench::Banner("Performance: Basic-DDP vs LSH-DDP on four data sets",
                "Fig. 10(a) runtime, 10(b) shuffle, 10(c) #distances");

  std::printf("%-14s %8s | %9s %9s %6s | %10s %10s %6s %7s | %9s %9s %6s\n",
              "data set", "N", "basic(s)", "lsh(s)", "spd", "basicShuf",
              "lshShuf", "save", "@paper", "basicDist", "lshDist", "save");

  for (const gen::NamedDataset& spec : gen::PerformanceSuite()) {
    const size_t n = bench::Scaled(spec.default_n);
    Dataset ds = std::move(spec.make(11, n)).ValueOrDie();
    CountingMetric metric;
    double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();

    // The paper runs Basic-DDP with block size 500. At our scaled-down N
    // that would leave too few blocks for the shuffle comparison to mean
    // anything (the paper's Facial set alone has 56 blocks), so we shrink
    // the block size proportionally less (sqrt of the scale factor) and
    // additionally report the analytic shuffle savings at the paper's full
    // cardinality ("@paper"): copies_basic / copies_lsh with
    // copies_basic = 2*(floor(n_blocks/2)+1), n_blocks = ceil(N/500), and
    // copies_lsh = 2*M.
    const double scale_down =
        static_cast<double>(n) / static_cast<double>(spec.paper_n);
    BasicDdp::Params bp;
    bp.block_size = std::max<size_t>(
        32, static_cast<size_t>(500.0 * std::sqrt(scale_down)));
    BasicDdp basic(bp);
    bench::CostReport basic_cost =
        bench::MeasureScores(&basic, ds, dc, mr::Options{});

    LshDdp::Params lp;
    lp.accuracy = 0.99;
    lp.lsh.num_layouts = 10;
    lp.lsh.pi = 3;
    LshDdp lsh(lp);
    bench::CostReport lsh_cost =
        bench::MeasureScores(&lsh, ds, dc, mr::Options{});

    const uint64_t paper_blocks = (spec.paper_n + 499) / 500;
    const double paper_copies_basic =
        2.0 * (static_cast<double>(paper_blocks / 2) + 1.0);
    const double paper_shuffle_savings = paper_copies_basic / (2.0 * 10.0);
    std::printf(
        "%-14s %8zu | %9.2f %9.2f %5.1fx | %10s %10s %5.1fx %6.1fx | %9s %9s "
        "%5.1fx\n",
        spec.name, ds.size(), basic_cost.seconds, lsh_cost.seconds,
        basic_cost.seconds / lsh_cost.seconds,
        bench::HumanBytes(basic_cost.shuffle_bytes).c_str(),
        bench::HumanBytes(lsh_cost.shuffle_bytes).c_str(),
        static_cast<double>(basic_cost.shuffle_bytes) /
            static_cast<double>(lsh_cost.shuffle_bytes),
        paper_shuffle_savings,
        bench::HumanCount(basic_cost.distance_evaluations).c_str(),
        bench::HumanCount(lsh_cost.distance_evaluations).c_str(),
        static_cast<double>(basic_cost.distance_evaluations) /
            static_cast<double>(lsh_cost.distance_evaluations));
  }

  std::printf(
      "\nExpected shape (paper): LSH-DDP wins on every axis; the larger the\n"
      "data set, the larger the speedup (Basic-DDP is quadratic).\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Main(); }

// Chaos benchmark: cost of fault tolerance on the LSH-DDP pipeline.
//
// Sweeps the chaos dial from a clean run through injected failures,
// stragglers (with and without speculative execution), and shuffle
// corruption, reporting wall time, recovery counter totals, and the
// attempt-duration straggler signal. The interesting numbers are (a) the
// overhead of the machinery when nothing goes wrong, and (b) how much of a
// straggler-stretched tail speculation claws back — the Fig. 12(a) skew
// regime is exactly where this matters.
//
// Run: ./build/bench/bench_chaos   (DDP_BENCH_SCALE=4 for a longer run)

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "dataset/generators.h"
#include "ddp/lsh_ddp.h"

namespace ddp {
namespace {

struct Scenario {
  const char* name;
  mr::Options mr;
};

mr::Options BaseMr() {
  mr::Options mr;
  mr.max_task_attempts = 24;
  return mr;
}

mr::Options WithFailures(mr::Options mr) {
  mr.faults.map_failure_rate = 0.25;
  mr.faults.reduce_failure_rate = 0.25;
  mr.faults.seed = 7;
  return mr;
}

mr::Options WithStragglers(mr::Options mr) {
  mr.faults.straggler_rate = 0.2;
  mr.faults.straggler_slowdown = 10.0;
  mr.faults.straggler_min_seconds = 0.05;
  mr.faults.seed = 7;
  return mr;
}

mr::Options WithSpeculation(mr::Options mr) {
  mr.speculative_execution = true;
  mr.speculative_multiplier = 3.0;
  return mr;
}

mr::Options WithCorruption(mr::Options mr) {
  mr.faults.corruption_rate = 0.1;
  mr.skip_bad_records = true;
  return mr;
}

int Run() {
  bench::QuietLogs quiet;
  bench::Banner("Fault-tolerance cost on LSH-DDP",
                "robustness layer; straggler regime of Fig. 12(a)");

  auto data = gen::KddLike(/*seed=*/3, bench::Scaled(2000));
  data.status().Abort("generating data set");
  const Dataset& dataset = *data;
  std::printf("data set: %zu points, %zu dims\n\n", dataset.size(),
              dataset.dim());

  std::vector<Scenario> scenarios = {
      {"clean", BaseMr()},
      {"25% task failures", WithFailures(BaseMr())},
      {"stragglers, no speculation", WithStragglers(BaseMr())},
      {"stragglers + speculation", WithSpeculation(WithStragglers(BaseMr()))},
      {"corruption + skip_bad_records", WithCorruption(BaseMr())},
      {"everything at once",
       WithSpeculation(WithCorruption(WithStragglers(WithFailures(BaseMr()))))},
  };

  std::printf("%-30s %9s %8s %9s %8s %9s %14s\n", "scenario", "seconds",
              "retries", "spec(won)", "skipped", "p99 att", "slowest/median");
  double clean_seconds = 0.0;
  for (const Scenario& s : scenarios) {
    DdpOptions options;
    options.mr = s.mr;
    options.selector = PeakSelector::TopK(8);
    LshDdp algo;
    auto result = RunDistributedDp(&algo, dataset, options);
    result.status().Abort(s.name);

    const mr::RunStats& stats = result->stats;
    double worst_ratio = 0.0, worst_p99 = 0.0;
    for (const mr::JobCounters& j : stats.jobs) {
      worst_ratio = std::max(worst_ratio, j.straggler_ratio);
      worst_p99 = std::max(worst_p99, j.p99_attempt_seconds);
    }
    char spec[32];
    std::snprintf(spec, sizeof(spec), "%llu(%llu)",
                  static_cast<unsigned long long>(
                      stats.TotalSpeculativeLaunches()),
                  static_cast<unsigned long long>(stats.TotalSpeculativeWins()));
    std::printf("%-30s %8.3fs %8llu %9s %8llu %8.3fs %14.2f\n", s.name,
                result->total_seconds,
                static_cast<unsigned long long>(stats.TotalTaskRetries()),
                spec,
                static_cast<unsigned long long>(stats.TotalSkippedRecords()),
                worst_p99, worst_ratio);
    if (clean_seconds == 0.0) clean_seconds = result->total_seconds;
  }
  std::printf(
      "\nReading: given idle workers to host the backups, 'stragglers +\n"
      "speculation' lands under 'stragglers, no speculation' -- backups\n"
      "absorb the stretched tail (on a single-core host they can only\n"
      "queue behind it). Every scenario is bit-identical to 'clean' by\n"
      "construction.\n");
  return 0;
}

}  // namespace
}  // namespace ddp

int main() { return ddp::Run(); }

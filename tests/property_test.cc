#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <tuple>

#include "core/cutoff.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/records.h"
#include "ddp/lsh_ddp.h"
#include "eval/tau.h"
#include "lsh/partitioner.h"
#include "lsh/theory.h"
#include "lsh/tuning.h"

namespace ddp {
namespace {

mr::Options FastMr() {
  mr::Options o;
  o.num_workers = 2;
  o.num_partitions = 8;
  return o;
}

// =====================================================================
// Property sweep 1: LSH collision probability matches Lemma 3's formula
// across (distance, width) combinations, validated by Monte Carlo.
// =====================================================================

class CollisionModelTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CollisionModelTest, EmpiricalMatchesTheory) {
  const auto [distance, width] = GetParam();
  Rng rng(1234);
  const int trials = 20000;
  int collisions = 0;
  for (int t = 0; t < trials; ++t) {
    lsh::PStableHash h = lsh::PStableHash::Random(8, width, &rng);
    std::vector<double> p = rng.GaussianVector(8);
    std::vector<double> dir = rng.GaussianVector(8);
    double norm = 0.0;
    for (double x : dir) norm += x * x;
    norm = std::sqrt(norm);
    std::vector<double> q = p;
    for (size_t d = 0; d < 8; ++d) q[d] += distance * dir[d] / norm;
    if (h.Hash(p) == h.Hash(q)) ++collisions;
  }
  double empirical = static_cast<double>(collisions) / trials;
  double theory = lsh::PCollision(distance, width);
  EXPECT_NEAR(empirical, theory, 0.015)
      << "d=" << distance << " w=" << width;
}

INSTANTIATE_TEST_SUITE_P(
    DistanceWidthGrid, CollisionModelTest,
    ::testing::Values(std::make_tuple(0.5, 1.0), std::make_tuple(1.0, 1.0),
                      std::make_tuple(2.0, 1.0), std::make_tuple(0.5, 4.0),
                      std::make_tuple(2.0, 4.0), std::make_tuple(8.0, 4.0),
                      std::make_tuple(1.0, 16.0), std::make_tuple(8.0, 16.0)));

// =====================================================================
// Property sweep 2: the closed-form width solver satisfies Eq. (5) over a
// grid of (accuracy, M, pi).
// =====================================================================

class WidthSolverTest
    : public ::testing::TestWithParam<std::tuple<double, size_t, size_t>> {};

TEST_P(WidthSolverTest, AchievesRequestedAccuracy) {
  const auto [accuracy, layouts, pi] = GetParam();
  const double dc = 3.7;
  auto w = lsh::SolveMinimalWidth(accuracy, layouts, pi, dc);
  ASSERT_TRUE(w.ok());
  EXPECT_GT(*w, 0.0);
  EXPECT_NEAR(lsh::ExpectedRhoAccuracy(*w, pi, layouts, dc), accuracy, 1e-9);
  // Minimality: a slightly narrower width must fall short of the target.
  EXPECT_LT(lsh::ExpectedRhoAccuracy(*w * 0.99, pi, layouts, dc), accuracy);
}

INSTANTIATE_TEST_SUITE_P(
    AccuracyGrid, WidthSolverTest,
    ::testing::Combine(::testing::Values(0.5, 0.8, 0.95, 0.99),
                       ::testing::Values<size_t>(1, 5, 10, 20),
                       ::testing::Values<size_t>(1, 3, 10)));

// =====================================================================
// Property sweep 3: per-layout local rho never exceeds exact rho, on all
// generator families.
// =====================================================================

class RhoUnderestimateTest : public ::testing::TestWithParam<int> {};

TEST_P(RhoUnderestimateTest, LocalRhoIsLowerBoundPerLayout) {
  const int family = GetParam();
  Result<Dataset> ds = [&]() -> Result<Dataset> {
    switch (family) {
      case 0:
        return gen::S2Like(21, 400);
      case 1:
        return gen::KddLike(21, 400);
      case 2:
        return gen::SpatialLike(21, 400);
      default:
        return gen::BigCrossLike(21, 400);
    }
  }();
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto dc_result = ChooseCutoff(*ds, metric);
  ASSERT_TRUE(dc_result.ok());
  const double dc = *dc_result;
  auto exact = ComputeExactRho(*ds, dc, metric);
  ASSERT_TRUE(exact.ok());

  auto part = lsh::MultiLshPartitioner::Create(ds->dim(), 3, 3,
                                               /*width=*/dc * 8, 99);
  ASSERT_TRUE(part.ok());
  for (const auto& layout : part->PartitionAll(*ds)) {
    for (const auto& [key, ids] : layout) {
      LocalDpResult local = ComputeLocalRho(*ds, ids, dc, metric);
      for (size_t k = 0; k < ids.size(); ++k) {
        ASSERT_LE(local.rho[k], (*exact)[ids[k]]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GeneratorFamilies, RhoUnderestimateTest,
                         ::testing::Values(0, 1, 2, 3));

// =====================================================================
// Property sweep 4: Basic-DDP is exact for every (N, block size) combo.
// =====================================================================

class BasicExactnessTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(BasicExactnessTest, MatchesSequential) {
  const auto [n, block_size] = GetParam();
  auto ds = gen::GaussianMixture(n, 3, 3, 40.0, 2.0, 55 + n);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  const double dc = 3.0;
  auto exact = ComputeExactDp(*ds, dc, metric);
  ASSERT_TRUE(exact.ok());
  BasicDdp::Params params;
  params.block_size = block_size;
  BasicDdp algo(params);
  auto scores = algo.ComputeScores(*ds, dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->rho, exact->rho);
  EXPECT_EQ(scores->delta, exact->delta);
  EXPECT_EQ(scores->upslope, exact->upslope);
}

INSTANTIATE_TEST_SUITE_P(
    SizeBlockGrid, BasicExactnessTest,
    ::testing::Combine(::testing::Values<size_t>(50, 101, 256),
                       ::testing::Values<size_t>(10, 33, 100, 500)));

// =====================================================================
// Property sweep 5: LSH-DDP invariants across accuracy targets.
// =====================================================================

class LshAccuracySweepTest : public ::testing::TestWithParam<double> {};

TEST_P(LshAccuracySweepTest, RhoUnderestimatesAndTau2TracksTarget) {
  const double accuracy = GetParam();
  auto ds = gen::BigCrossLike(31, 500);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto dc_result = ChooseCutoff(*ds, metric);
  ASSERT_TRUE(dc_result.ok());
  const double dc = *dc_result;
  auto exact = ComputeExactRho(*ds, dc, metric);
  ASSERT_TRUE(exact.ok());

  LshDdp::Params params;
  params.accuracy = accuracy;
  params.lsh.num_layouts = 10;
  params.lsh.pi = 3;
  LshDdp algo(params);
  auto approx = algo.ComputeScores(*ds, dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(approx.ok());

  for (size_t i = 0; i < ds->size(); ++i) {
    ASSERT_LE(approx->rho[i], (*exact)[i]);
  }
  auto tau2 = eval::Tau2(approx->rho, *exact);
  ASSERT_TRUE(tau2.ok());
  // Fig. 9(b): tau2 stays at or above the expected accuracy (with slack for
  // sampling noise on a scaled-down set).
  EXPECT_GT(*tau2, accuracy - 0.15) << "A=" << accuracy;
}

INSTANTIATE_TEST_SUITE_P(AccuracyTargets, LshAccuracySweepTest,
                         ::testing::Values(0.5, 0.7, 0.9, 0.99));

// =====================================================================
// Property sweep 6: DecisionGraph rectification and selector sanity under
// random score vectors.
// =====================================================================

class DecisionGraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecisionGraphPropertyTest, RectificationAndSelectorInvariants) {
  Rng rng(GetParam());
  const size_t n = 200;
  DpScores scores;
  scores.Resize(n);
  for (size_t i = 0; i < n; ++i) {
    scores.rho[i] = static_cast<uint32_t>(rng.UniformInt(50));
    scores.delta[i] = rng.Uniform() < 0.05
                          ? std::numeric_limits<double>::infinity()
                          : rng.Uniform(0.0, 10.0);
  }
  DecisionGraph graph = DecisionGraph::FromScores(scores);
  // All rectified deltas are finite and bounded by the max finite delta.
  for (double d : graph.delta()) {
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_LE(d, graph.max_finite_delta());
  }
  // TopK returns k strictly-decreasing-gamma ids.
  auto top = graph.SelectTopK(10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(graph.gamma(top[i - 1]), graph.gamma(top[i]));
  }
  // Threshold selection returns only qualifying points.
  for (PointId p : graph.SelectByThreshold(25.0, 5.0)) {
    EXPECT_GT(graph.rho()[p], 25.0);
    EXPECT_GT(graph.delta()[p], 5.0);
  }
  // GammaGap returns a non-empty prefix of TopK.
  auto peaks = graph.SelectByGammaGap();
  ASSERT_FALSE(peaks.empty());
  auto prefix = graph.SelectTopK(peaks.size());
  EXPECT_EQ(peaks, prefix);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecisionGraphPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// =====================================================================
// Property sweep 7: serde round-trips random values of every record type
// used by the shuffle.
// =====================================================================

class SerdeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeFuzzTest, RandomRecordsRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    // Random PointRecord.
    ddprec::PointRecord point;
    point.id = static_cast<PointId>(rng.UniformInt(1u << 31));
    point.coords = rng.GaussianVector(rng.UniformInt(20));
    // Random ScoredPointRecord.
    ddprec::ScoredPointRecord scored;
    scored.id = static_cast<PointId>(rng.UniformInt(1u << 31));
    scored.rho = static_cast<uint32_t>(rng.UniformInt(1u << 20));
    scored.coords = rng.GaussianVector(rng.UniformInt(20));
    // Random DeltaCandidate (sometimes infinite).
    ddprec::DeltaCandidate cand;
    cand.delta_sq = rng.Uniform() < 0.1
                        ? std::numeric_limits<double>::infinity()
                        : rng.Uniform(0.0, 1e9);
    cand.upslope = rng.Uniform() < 0.1
                       ? kInvalidPointId
                       : static_cast<PointId>(rng.UniformInt(1u << 31));

    BufferWriter w;
    Serde<ddprec::PointRecord>::Write(&w, point);
    Serde<ddprec::ScoredPointRecord>::Write(&w, scored);
    Serde<ddprec::DeltaCandidate>::Write(&w, cand);
    BufferReader r(w.data());
    ddprec::PointRecord point2;
    ddprec::ScoredPointRecord scored2;
    ddprec::DeltaCandidate cand2;
    ASSERT_TRUE(Serde<ddprec::PointRecord>::Read(&r, &point2).ok());
    ASSERT_TRUE(Serde<ddprec::ScoredPointRecord>::Read(&r, &scored2).ok());
    ASSERT_TRUE(Serde<ddprec::DeltaCandidate>::Read(&r, &cand2).ok());
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(point, point2);
    EXPECT_EQ(scored, scored2);
    EXPECT_EQ(cand, cand2);
  }
}

TEST_P(SerdeFuzzTest, TruncatedPrefixesNeverCrash) {
  Rng rng(GetParam() + 100);
  ddprec::ScoredPointRecord scored;
  scored.id = 12345;
  scored.rho = 678;
  scored.coords = rng.GaussianVector(8);
  BufferWriter w;
  Serde<ddprec::ScoredPointRecord>::Write(&w, scored);
  const std::string& bytes = w.data();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    BufferReader r(bytes.data(), cut);
    ddprec::ScoredPointRecord out;
    Status st = Serde<ddprec::ScoredPointRecord>::Read(&r, &out);
    EXPECT_TRUE(st.IsIoError()) << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzzTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace ddp

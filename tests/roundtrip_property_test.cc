#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/cutoff.h"
#include "core/sequential_dp.h"
#include "dataset/binary_io.h"
#include "dataset/csv.h"
#include "dataset/generators.h"
#include "dataset/kdtree.h"

namespace ddp {
namespace {

// One instance per generator family, exercised by every property below.
struct Family {
  const char* name;
  Result<Dataset> (*make)(uint64_t seed, size_t n);
  size_t n;
};

class GeneratorFamilyTest : public ::testing::TestWithParam<Family> {
 protected:
  Dataset Make() const {
    const Family& family = GetParam();
    return std::move(family.make(12345, family.n)).ValueOrDie();
  }
};

TEST_P(GeneratorFamilyTest, BinarySerializationRoundTripsExactly) {
  Dataset ds = Make();
  auto loaded = DeserializeDataset(SerializeDataset(ds));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dim(), ds.dim());
  EXPECT_EQ(loaded->values(), ds.values());  // bit-exact doubles
  EXPECT_EQ(loaded->labels(), ds.labels());
}

TEST_P(GeneratorFamilyTest, CsvRoundTripsExactly) {
  // WriteCsvFile prints 17 significant digits, which round-trips IEEE
  // doubles exactly.
  Dataset ds = Make();
  std::string path = (std::filesystem::temp_directory_path() /
                      (std::string("ddp_rt_") + GetParam().name + ".csv"))
                         .string();
  ASSERT_TRUE(WriteCsvFile(path, ds).ok());
  CsvOptions opts;
  opts.last_column_is_label = true;
  auto loaded = ReadCsvFile(path, opts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->values(), ds.values());
  EXPECT_EQ(loaded->labels(), ds.labels());
  std::remove(path.c_str());
}

TEST_P(GeneratorFamilyTest, KdTreeRhoMatchesScanAtChosenCutoff) {
  Dataset ds = Make();
  CountingMetric metric;
  double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();
  SequentialDpOptions scan, tree;
  tree.use_kdtree_rho = true;
  auto a = ComputeExactRho(ds, dc, metric, scan);
  auto b = ComputeExactRho(ds, dc, metric, tree);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_P(GeneratorFamilyTest, TriangleFilterMatchesScanAtChosenCutoff) {
  Dataset ds = Make();
  CountingMetric metric;
  double dc = std::move(ChooseCutoff(ds, metric)).ValueOrDie();
  SequentialDpOptions plain, filtered;
  filtered.use_triangle_filter = true;
  auto a = ComputeExactDp(ds, dc, metric, plain);
  auto b = ComputeExactDp(ds, dc, metric, filtered);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rho, b->rho);
  EXPECT_EQ(a->delta, b->delta);
  EXPECT_EQ(a->upslope, b->upslope);
}

TEST_P(GeneratorFamilyTest, CutoffSamplerIsStableAcrossSeeds) {
  // Different sampling seeds must land in the same ballpark (the percentile
  // of a fixed distribution).
  Dataset ds = Make();
  CountingMetric metric;
  CutoffOptions a, b;
  a.seed = 1;
  b.seed = 999;
  double dc_a = std::move(ChooseCutoff(ds, metric, a)).ValueOrDie();
  double dc_b = std::move(ChooseCutoff(ds, metric, b)).ValueOrDie();
  EXPECT_GT(dc_b, 0.5 * dc_a);
  EXPECT_LT(dc_b, 2.0 * dc_a);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, GeneratorFamilyTest,
    ::testing::Values(Family{"aggregation", &gen::AggregationLike, 300},
                      Family{"s2", &gen::S2Like, 300},
                      Family{"facial", &gen::FacialLike, 200},
                      Family{"kdd", &gen::KddLike, 300},
                      Family{"spatial", &gen::SpatialLike, 300},
                      Family{"bigcross", &gen::BigCrossLike, 300}),
    [](const ::testing::TestParamInfo<Family>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace ddp

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/driver.h"
#include "ddp/eddpc.h"
#include "ddp/lsh_ddp.h"
#include "ddp/mr_kmeans.h"
#include "eval/metrics.h"
#include "eval/tau.h"

namespace ddp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

mr::Options FastMr() {
  mr::Options o;
  o.num_workers = 2;
  o.num_partitions = 8;
  return o;
}

// Shared fixture data: a moderate labeled mixture.
const Dataset& TestMixture() {
  static const Dataset* ds = [] {
    auto r = gen::GaussianMixture(600, 4, 5, 100.0, 2.0, 101);
    return new Dataset(std::move(r).ValueOrDie());
  }();
  return *ds;
}

double TestCutoff() {
  static const double dc = [] {
    CountingMetric metric;
    return std::move(ChooseCutoff(TestMixture(), metric)).ValueOrDie();
  }();
  return dc;
}

// ------------------------------------------------------ Basic-DDP routing

TEST(BasicDdpRoutingTest, EveryBlockPairMeetsExactlyOnce) {
  for (uint32_t n : {1u, 2u, 3u, 4u, 5u, 8u, 9u, 16u, 17u}) {
    for (uint32_t a = 0; a < n; ++a) {
      // Reducers block a is sent to.
      std::set<uint32_t> targets_a;
      for (uint32_t t = 0; t <= n / 2; ++t) targets_a.insert((a + t) % n);
      for (uint32_t b = a; b < n; ++b) {
        std::set<uint32_t> targets_b;
        for (uint32_t t = 0; t <= n / 2; ++t) targets_b.insert((b + t) % n);
        uint32_t meet = BasicDdp::MeetingReducer(a, b, n);
        // The meeting reducer receives both blocks.
        EXPECT_TRUE(targets_a.count(meet)) << "n=" << n << " a=" << a
                                           << " b=" << b;
        EXPECT_TRUE(targets_b.count(meet)) << "n=" << n << " a=" << a
                                           << " b=" << b;
        // Symmetric and deterministic.
        EXPECT_EQ(meet, BasicDdp::MeetingReducer(b, a, n));
      }
    }
  }
}

TEST(BasicDdpRoutingTest, ShuffleCopiesPerPointIsHalfBlocksPlusOne) {
  // The circular scheme sends each block floor(n/2)+1 times, the paper's
  // ceil((n+1)/2) for odd n.
  for (uint32_t n : {1u, 3u, 5u, 7u, 9u}) {
    EXPECT_EQ(n / 2 + 1, (n + 1) / 2 + (n % 2 == 0 ? 1 : 0));
  }
}

// ---------------------------------------------------- Basic-DDP exactness

TEST(BasicDdpTest, MatchesSequentialExactly) {
  const Dataset& ds = TestMixture();
  const double dc = TestCutoff();
  CountingMetric metric;
  auto exact = ComputeExactDp(ds, dc, metric);
  ASSERT_TRUE(exact.ok());

  BasicDdp::Params params;
  params.block_size = 100;
  BasicDdp algo(params);
  mr::RunStats stats;
  auto distributed = algo.ComputeScores(ds, dc, metric, FastMr(), &stats);
  ASSERT_TRUE(distributed.ok());

  EXPECT_EQ(distributed->rho, exact->rho);
  EXPECT_EQ(distributed->delta, exact->delta);
  EXPECT_EQ(distributed->upslope, exact->upslope);
  EXPECT_EQ(stats.jobs.size(), 4u);
}

TEST(BasicDdpTest, ExactForSingleBlock) {
  auto ds = gen::GaussianMixture(80, 2, 2, 10.0, 1.0, 7);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto exact = ComputeExactDp(*ds, 1.0, metric);
  ASSERT_TRUE(exact.ok());
  BasicDdp::Params params;
  params.block_size = 1000;  // one block
  BasicDdp algo(params);
  auto distributed = algo.ComputeScores(*ds, 1.0, metric, FastMr(), nullptr);
  ASSERT_TRUE(distributed.ok());
  EXPECT_EQ(distributed->rho, exact->rho);
  EXPECT_EQ(distributed->delta, exact->delta);
}

TEST(BasicDdpTest, ExactAcrossBlockSizes) {
  auto ds = gen::GaussianMixture(150, 3, 3, 30.0, 1.5, 9);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto exact = ComputeExactDp(*ds, 2.0, metric);
  ASSERT_TRUE(exact.ok());
  for (size_t block_size : {10ul, 37ul, 75ul, 149ul}) {
    BasicDdp::Params params;
    params.block_size = block_size;
    BasicDdp algo(params);
    auto distributed = algo.ComputeScores(*ds, 2.0, metric, FastMr(), nullptr);
    ASSERT_TRUE(distributed.ok()) << "block_size=" << block_size;
    EXPECT_EQ(distributed->rho, exact->rho) << "block_size=" << block_size;
    EXPECT_EQ(distributed->delta, exact->delta) << "block_size=" << block_size;
    EXPECT_EQ(distributed->upslope, exact->upslope)
        << "block_size=" << block_size;
  }
}

TEST(BasicDdpTest, DistanceCountMatchesQuadraticModel) {
  // Sec. III-B: N(N-1)/2 distances in the rho job and again in delta.
  auto ds = gen::GaussianMixture(120, 2, 2, 10.0, 1.0, 11);
  ASSERT_TRUE(ds.ok());
  DistanceCounter counter;
  CountingMetric metric(&counter);
  BasicDdp::Params params;
  params.block_size = 30;
  BasicDdp algo(params);
  ASSERT_TRUE(algo.ComputeScores(*ds, 1.0, metric, FastMr(), nullptr).ok());
  uint64_t n = 120;
  EXPECT_EQ(counter.value(), 2 * (n * (n - 1) / 2));
}

TEST(BasicDdpTest, Validation) {
  CountingMetric metric;
  Dataset empty(2);
  BasicDdp algo;
  EXPECT_FALSE(algo.ComputeScores(empty, 1.0, metric, FastMr(), nullptr).ok());
  EXPECT_FALSE(
      algo.ComputeScores(TestMixture(), 0.0, metric, FastMr(), nullptr).ok());
  BasicDdp::Params bad;
  bad.block_size = 0;
  BasicDdp bad_algo(bad);
  EXPECT_FALSE(
      bad_algo.ComputeScores(TestMixture(), 1.0, metric, FastMr(), nullptr)
          .ok());
}

// ------------------------------------------------------------- LSH-DDP

TEST(LshDdpTest, RhoNeverOvercounts) {
  // rho_hat^m <= rho for every layout, hence also after max-aggregation.
  const Dataset& ds = TestMixture();
  const double dc = TestCutoff();
  CountingMetric metric;
  auto exact = ComputeExactRho(ds, dc, metric);
  ASSERT_TRUE(exact.ok());
  LshDdp algo;
  auto approx = algo.ComputeScores(ds, dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(approx.ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_LE(approx->rho[i], (*exact)[i]) << "point " << i;
  }
}

TEST(LshDdpTest, DeltaNeverUndershootsExact) {
  // Each local delta_hat^m is a min over a subset of the true candidate
  // set, so delta_hat >= delta (with exact rho; with underestimated rho the
  // candidate set can only shrink further).
  const Dataset& ds = TestMixture();
  const double dc = TestCutoff();
  CountingMetric metric;
  auto exact = ComputeExactDp(ds, dc, metric);
  ASSERT_TRUE(exact.ok());
  LshDdp::Params params;
  params.accuracy = 0.99;
  LshDdp algo(params);
  auto approx = algo.ComputeScores(ds, dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(approx.ok());
  size_t at_least = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (approx->rho[i] == exact->rho[i] &&
        approx->delta[i] >= exact->delta[i] - 1e-12) {
      ++at_least;
    }
  }
  // For points with exact rho the bound must hold; nearly all points should
  // satisfy it at A=0.99.
  EXPECT_GT(static_cast<double>(at_least) / static_cast<double>(ds.size()),
            0.9);
}

TEST(LshDdpTest, HighAccuracyRecoversMostRhoExactly) {
  const Dataset& ds = TestMixture();
  const double dc = TestCutoff();
  CountingMetric metric;
  auto exact = ComputeExactRho(ds, dc, metric);
  ASSERT_TRUE(exact.ok());
  LshDdp::Params params;
  params.accuracy = 0.99;
  params.lsh.num_layouts = 10;
  params.lsh.pi = 3;
  LshDdp algo(params);
  auto approx = algo.ComputeScores(ds, dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(approx.ok());
  auto tau1 = eval::Tau1(approx->rho, *exact);
  ASSERT_TRUE(tau1.ok());
  EXPECT_GT(*tau1, 0.9);  // headroom below the 0.99 target for sampling noise
}

TEST(LshDdpTest, AccuracyKnobMonotone) {
  const Dataset& ds = TestMixture();
  const double dc = TestCutoff();
  CountingMetric metric;
  auto exact = ComputeExactRho(ds, dc, metric);
  ASSERT_TRUE(exact.ok());
  auto tau2_at = [&](double accuracy) {
    LshDdp::Params params;
    params.accuracy = accuracy;
    params.seed = 55;
    LshDdp algo(params);
    auto approx = algo.ComputeScores(ds, dc, metric, FastMr(), nullptr);
    EXPECT_TRUE(approx.ok());
    return std::move(eval::Tau2(approx->rho, *exact)).ValueOrDie();
  };
  double lo = tau2_at(0.30);
  double hi = tau2_at(0.99);
  EXPECT_GT(hi, lo - 0.02);  // allow small noise, expect clear improvement
  EXPECT_GT(hi, 0.9);
}

TEST(LshDdpTest, InfiniteDeltaMarksLocalPeaks) {
  const Dataset& ds = TestMixture();
  const double dc = TestCutoff();
  CountingMetric metric;
  LshDdp algo;
  auto approx = algo.ComputeScores(ds, dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(approx.ok());
  size_t inf_count = 0;
  for (double d : approx->delta) {
    if (std::isinf(d)) ++inf_count;
  }
  // At least the absolute peak; typically a handful of local peaks
  // (Sec. IV-C), but far fewer than the point count.
  EXPECT_GE(inf_count, 1u);
  EXPECT_LT(inf_count, ds.size() / 10);
}

TEST(LshDdpTest, UpslopeDenserUnderApproximateOrder) {
  const Dataset& ds = TestMixture();
  const double dc = TestCutoff();
  CountingMetric metric;
  LshDdp algo;
  auto approx = algo.ComputeScores(ds, dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(approx.ok());
  for (size_t i = 0; i < approx->size(); ++i) {
    PointId u = approx->upslope[i];
    if (u == kInvalidPointId) continue;
    EXPECT_TRUE(DenserThan(approx->rho[u], u, approx->rho[i],
                           static_cast<PointId>(i)));
  }
}

TEST(LshDdpTest, ShuffleScalesWithLayoutCount) {
  // Sec. IV-D: the partition jobs shuffle M copies of every point.
  const Dataset& ds = TestMixture();
  const double dc = TestCutoff();
  CountingMetric metric;
  auto shuffle_with_m = [&](size_t m) {
    LshDdp::Params params;
    params.lsh.num_layouts = m;
    params.lsh.pi = 3;
    params.accuracy = 0.99;
    LshDdp algo(params);
    mr::RunStats stats;
    EXPECT_TRUE(algo.ComputeScores(ds, dc, metric, FastMr(), &stats).ok());
    // Jobs 0 and 2 carry the point payloads.
    return stats.jobs[0].shuffle_bytes + stats.jobs[2].shuffle_bytes;
  };
  uint64_t m5 = shuffle_with_m(5);
  uint64_t m10 = shuffle_with_m(10);
  EXPECT_NEAR(static_cast<double>(m10) / static_cast<double>(m5), 2.0, 0.1);
}

TEST(LshDdpTest, FourJobsReported) {
  const Dataset& ds = TestMixture();
  CountingMetric metric;
  LshDdp algo;
  mr::RunStats stats;
  ASSERT_TRUE(
      algo.ComputeScores(ds, TestCutoff(), metric, FastMr(), &stats).ok());
  ASSERT_EQ(stats.jobs.size(), 4u);
  EXPECT_EQ(stats.jobs[0].job_name, "lsh-rho-local");
  EXPECT_EQ(stats.jobs[1].job_name, "lsh-rho-aggregate");
  EXPECT_EQ(stats.jobs[2].job_name, "lsh-delta-local");
  EXPECT_EQ(stats.jobs[3].job_name, "lsh-delta-aggregate");
}

TEST(LshDdpTest, ExplicitWidthSkipsTuning) {
  const Dataset& ds = TestMixture();
  CountingMetric metric;
  LshDdp::Params params;
  params.lsh.width = 50.0;
  LshDdp algo(params);
  EXPECT_TRUE(
      algo.ComputeScores(ds, TestCutoff(), metric, FastMr(), nullptr).ok());
}

TEST(LshDdpTest, Validation) {
  CountingMetric metric;
  Dataset empty(2);
  LshDdp algo;
  EXPECT_FALSE(algo.ComputeScores(empty, 1.0, metric, FastMr(), nullptr).ok());
  EXPECT_FALSE(
      algo.ComputeScores(TestMixture(), -1.0, metric, FastMr(), nullptr).ok());
  LshDdp::Params bad;
  bad.accuracy = 1.5;  // unsolvable accuracy target
  LshDdp bad_algo(bad);
  EXPECT_FALSE(
      bad_algo.ComputeScores(TestMixture(), 1.0, metric, FastMr(), nullptr)
          .ok());
}

// --------------------------------------------------------------- EDDPC

TEST(EddpcTest, MatchesSequentialExactly) {
  const Dataset& ds = TestMixture();
  const double dc = TestCutoff();
  CountingMetric metric;
  auto exact = ComputeExactDp(ds, dc, metric);
  ASSERT_TRUE(exact.ok());
  Eddpc algo;
  mr::RunStats stats;
  auto distributed = algo.ComputeScores(ds, dc, metric, FastMr(), &stats);
  ASSERT_TRUE(distributed.ok());
  EXPECT_EQ(distributed->rho, exact->rho);
  EXPECT_EQ(distributed->delta, exact->delta);
  EXPECT_EQ(distributed->upslope, exact->upslope);
  EXPECT_EQ(stats.jobs.size(), 4u);
}

TEST(EddpcTest, ExactAcrossPivotCounts) {
  auto ds = gen::GaussianMixture(250, 3, 4, 50.0, 2.0, 71);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  const double dc = 3.0;
  auto exact = ComputeExactDp(*ds, dc, metric);
  ASSERT_TRUE(exact.ok());
  for (size_t pivots : {1ul, 4ul, 16ul, 64ul, 250ul}) {
    Eddpc::Params params;
    params.num_pivots = pivots;
    Eddpc algo(params);
    auto distributed = algo.ComputeScores(*ds, dc, metric, FastMr(), nullptr);
    ASSERT_TRUE(distributed.ok()) << "pivots=" << pivots;
    EXPECT_EQ(distributed->rho, exact->rho) << "pivots=" << pivots;
    EXPECT_EQ(distributed->delta, exact->delta) << "pivots=" << pivots;
  }
}

TEST(EddpcTest, ShufflesLessThanBasic) {
  const Dataset& ds = TestMixture();
  const double dc = TestCutoff();
  CountingMetric metric;
  mr::RunStats basic_stats, eddpc_stats;
  BasicDdp::Params bp;
  bp.block_size = 15;  // 40 blocks => ~21 shuffled copies of every point
  BasicDdp basic(bp);
  ASSERT_TRUE(basic.ComputeScores(ds, dc, metric, FastMr(), &basic_stats).ok());
  Eddpc eddpc;
  ASSERT_TRUE(eddpc.ComputeScores(ds, dc, metric, FastMr(), &eddpc_stats).ok());
  EXPECT_LT(eddpc_stats.TotalShuffleBytes(), basic_stats.TotalShuffleBytes());
}

// ------------------------------------------------------------- Driver

TEST(DriverTest, CutoffJobApproximatesSequentialCutoff) {
  const Dataset& ds = TestMixture();
  CountingMetric metric;
  CutoffOptions options;
  mr::RunStats stats;
  auto mr_dc = ChooseCutoffMapReduce(ds, metric, options, FastMr(), &stats);
  ASSERT_TRUE(mr_dc.ok());
  auto seq_dc = ChooseCutoff(ds, metric, options);
  ASSERT_TRUE(seq_dc.ok());
  // Both are percentile estimates from (different) samples: same ballpark.
  EXPECT_GT(*mr_dc, 0.3 * *seq_dc);
  EXPECT_LT(*mr_dc, 3.0 * *seq_dc);
  EXPECT_EQ(stats.jobs.size(), 1u);
  EXPECT_EQ(stats.jobs[0].job_name, "choose-dc");
}

TEST(DriverTest, FullPipelineRecoversPlantedClusters) {
  auto ds = gen::GaussianMixture(500, 2, 4, 400.0, 3.0, 77);
  ASSERT_TRUE(ds.ok());
  LshDdp algo;
  DdpOptions options;
  options.mr = FastMr();
  options.selector = PeakSelector::TopK(4);
  auto run = RunDistributedDp(&algo, *ds, options);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->dc, 0.0);
  EXPECT_EQ(run->clusters.num_clusters(), 4u);
  EXPECT_GT(run->distance_evaluations, 0u);
  auto ari = eval::AdjustedRandIndex(run->clusters.assignment, ds->labels());
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.95);  // well-separated blobs: near-perfect recovery
}

TEST(DriverTest, ExplicitDcSkipsPreprocessingJob) {
  auto ds = gen::GaussianMixture(200, 2, 2, 50.0, 2.0, 79);
  ASSERT_TRUE(ds.ok());
  BasicDdp algo;
  DdpOptions options;
  options.mr = FastMr();
  options.dc = 5.0;
  options.selector = PeakSelector::TopK(2);
  auto run = RunDistributedDp(&algo, *ds, options);
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run->dc, 5.0);
  EXPECT_EQ(run->stats.jobs.size(), 4u);  // no choose-dc job
}

TEST(DriverTest, SelectorModes) {
  DpScores scores;
  scores.Resize(4);
  scores.rho = {10, 9, 1, 1};
  scores.delta = {kInf, 5.0, 0.1, 0.1};
  DecisionGraph graph = DecisionGraph::FromScores(scores);
  EXPECT_EQ(PeakSelector::TopK(2).Select(graph).size(), 2u);
  EXPECT_EQ(PeakSelector::Threshold(5.0, 1.0).Select(graph).size(), 2u);
  EXPECT_EQ(PeakSelector::GammaGap().Select(graph).size(), 2u);
}

TEST(DriverTest, Validation) {
  auto ds = gen::GaussianMixture(100, 2, 2, 10.0, 1.0, 83);
  ASSERT_TRUE(ds.ok());
  DdpOptions options;
  EXPECT_TRUE(RunDistributedDp(nullptr, *ds, options)
                  .status()
                  .IsInvalidArgument());
  LshDdp algo;
  Dataset tiny(2);
  tiny.Add(std::vector<double>{0.0, 0.0});
  EXPECT_TRUE(
      RunDistributedDp(&algo, tiny, options).status().IsInvalidArgument());
}

// ----------------------------------------------------------- MR K-means

TEST(MrKmeansTest, RecoversWellSeparatedBlobs) {
  auto ds = gen::GaussianMixture(400, 2, 3, 300.0, 2.0, 91);
  ASSERT_TRUE(ds.ok());
  MrKmeansOptions options;
  options.k = 3;
  options.max_iterations = 30;
  options.convergence_tol = 1e-9;
  options.seed = 2;  // uniform init can hit a 2-in-1-blob local minimum
  options.mr = FastMr();
  CountingMetric metric;
  auto result = RunMrKmeans(*ds, options, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->iterations_run, 30u);
  EXPECT_EQ(result->iteration_seconds.size(), result->iterations_run);
  auto ari = eval::AdjustedRandIndex(result->assignment, ds->labels());
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.9);
}

TEST(MrKmeansTest, FixedIterationsWithoutTolerance) {
  auto ds = gen::GaussianMixture(150, 2, 2, 50.0, 2.0, 93);
  ASSERT_TRUE(ds.ok());
  MrKmeansOptions options;
  options.k = 2;
  options.max_iterations = 7;
  options.convergence_tol = 0.0;  // paper style: run all iterations
  options.mr = FastMr();
  CountingMetric metric;
  auto result = RunMrKmeans(*ds, options, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations_run, 7u);
  EXPECT_EQ(result->stats.jobs.size(), 7u);
}

TEST(MrKmeansTest, CombinerKeepsShuffleSmall) {
  auto ds = gen::GaussianMixture(500, 8, 3, 50.0, 2.0, 95);
  ASSERT_TRUE(ds.ok());
  MrKmeansOptions options;
  options.k = 3;
  options.max_iterations = 1;
  options.mr = FastMr();
  CountingMetric metric;
  auto result = RunMrKmeans(*ds, options, metric);
  ASSERT_TRUE(result.ok());
  // Without a combiner the job would shuffle ~N records; with it, at most
  // (#map tasks) * k.
  EXPECT_LE(result->stats.jobs[0].shuffle_records, 8u * 3u);
}

TEST(MrKmeansTest, Validation) {
  auto ds = gen::GaussianMixture(50, 2, 2, 10.0, 1.0, 97);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  MrKmeansOptions options;
  options.k = 0;
  EXPECT_FALSE(RunMrKmeans(*ds, options, metric).ok());
  options.k = 100;
  EXPECT_FALSE(RunMrKmeans(*ds, options, metric).ok());
  options.k = 2;
  options.max_iterations = 0;
  EXPECT_FALSE(RunMrKmeans(*ds, options, metric).ok());
}

// ------------------------------------ Cost-shape comparisons (Sec. VI-D)

TEST(CostShapeTest, LshShufflesLessAndComputesLessThanBasic) {
  const Dataset& ds = TestMixture();
  const double dc = TestCutoff();

  DistanceCounter basic_counter, lsh_counter;
  mr::RunStats basic_stats, lsh_stats;
  BasicDdp::Params bp;
  bp.block_size = 15;  // enough blocks that Basic shuffles > 2M copies
  BasicDdp basic(bp);
  ASSERT_TRUE(basic
                  .ComputeScores(ds, dc, CountingMetric(&basic_counter),
                                 FastMr(), &basic_stats)
                  .ok());
  LshDdp lsh;
  ASSERT_TRUE(lsh.ComputeScores(ds, dc, CountingMetric(&lsh_counter), FastMr(),
                                &lsh_stats)
                  .ok());
  EXPECT_LT(lsh_stats.TotalShuffleBytes(), basic_stats.TotalShuffleBytes());
  EXPECT_LT(lsh_counter.value(), basic_counter.value());
}

}  // namespace
}  // namespace ddp

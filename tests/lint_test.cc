// End-to-end tests for tools/ddp_lint against the checked-in fixture tree in
// tests/lint_fixtures/. The fixtures mirror real tree paths (src/core,
// src/common, src/mapreduce, tools/) so the path-scoped rules fire exactly
// as they do over the real tree; the tree scan itself skips anything under a
// lint_fixtures directory. Each test pins the exact diagnostic lines and the exit code, so
// a behavior change in the linter fails here before it confuses CI.

#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

#ifndef DDP_LINT_BIN
#error "DDP_LINT_BIN must point at the ddp_lint executable"
#endif
#ifndef DDP_LINT_FIXTURES
#error "DDP_LINT_FIXTURES must point at tests/lint_fixtures"
#endif

struct RunResult {
  int exit_code = -1;
  std::string out;  // stdout only; stderr carries the summary line
};

RunResult RunLint(const std::string& args) {
  RunResult r;
  std::string cmd = std::string(DDP_LINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) r.out.append(buf, n);
  int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string Fixture(const std::string& rel) {
  return std::string(DDP_LINT_FIXTURES) + "/" + rel;
}

TEST(LintTest, ListRulesNamesEveryRule) {
  RunResult r = RunLint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"no-raw-sqrt", "ordered-emission", "explicit-memory-order",
        "banned-nondeterminism", "name-hygiene", "header-hygiene",
        "process-control", "serde-symmetry", "frame-exhaustive",
        "lock-across-blocking", "name-registry", "suppression-missing-reason",
        "unused-suppression"}) {
    EXPECT_NE(r.out.find(rule), std::string::npos) << "missing rule " << rule;
  }
}

TEST(LintTest, RawSqrtViolation) {
  std::string f = Fixture("src/core/raw_sqrt.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":3: [no-raw-sqrt] sqrt() in squared-space kernel code; keep "
                "distances in d^2 and take one sqrt at final assembly "
                "(annotate that site)\n");
}

TEST(LintTest, SuppressionWithReasonIsClean) {
  RunResult r = RunLint(Fixture("src/core/raw_sqrt_allowed.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, SuppressionWithoutReasonReportsBoth) {
  std::string f = Fixture("src/core/raw_sqrt_noreason.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":3: [suppression-missing-reason] allow(no-raw-sqrt) has no "
                "'-- <reason>'; suppressions must say why\n" +
                f +
                ":4: [no-raw-sqrt] sqrt() in squared-space kernel code; keep "
                "distances in d^2 and take one sqrt at final assembly "
                "(annotate that site)\n");
}

TEST(LintTest, UnusedSuppressionIsReported) {
  std::string f = Fixture("src/core/unused_allow.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":3: [unused-suppression] allow(no-raw-sqrt) suppresses "
                "nothing on its target line; remove it\n");
}

TEST(LintTest, OrderedEmissionFlagsHashOrderOnly) {
  std::string f = Fixture("src/mapreduce/unordered_emit.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  // EmitAll (line 6) is flagged; the collect-then-sort sibling is clean.
  EXPECT_EQ(r.out,
            f +
                ":6: [ordered-emission] iteration over an unordered container "
                "in a scope that emits records, with no sort in scope; "
                "emission order must be derivable, not hash-order\n");
}

TEST(LintTest, ExplicitMemoryOrderFlagsImplicitOps) {
  std::string f = Fixture("src/common/atomic_order.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":7: [explicit-memory-order] implicit seq_cst "
                "increment/decrement of atomic 'counter'; use "
                "fetch_add/fetch_sub with an explicit std::memory_order_*\n" +
                f +
                ":9: [explicit-memory-order] atomic load() without an "
                "explicit std::memory_order_* argument (implicit seq_cst "
                "hides the intended ordering)\n");
}

TEST(LintTest, BannedNondeterminism) {
  std::string f = Fixture("src/core/nondet.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":3: [banned-nondeterminism] rand is a banned nondeterminism "
                "source: use ddp::Rng seeded from Options\n");
}

TEST(LintTest, NameHygieneFlagsBadLiteralOnly) {
  std::string f = Fixture("src/common/bad_name.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  // "good_name.ok" on line 4 passes; only "Bad-Name" is flagged.
  EXPECT_EQ(r.out,
            f +
                ":3: [name-hygiene] span/metric name \"Bad-Name\" must match "
                "[a-z0-9_.]+ so exported traces and metric keys stay "
                "greppable and collator-safe\n");
}

TEST(LintTest, HeaderHygiene) {
  std::string f = Fixture("src/common/bad_header.h");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f + ":1: [header-hygiene] header is missing #pragma once\n" + f +
                ":2: [header-hygiene] using namespace in a header leaks into "
                "every includer\n");
}

TEST(LintTest, ProcessControlConfinedToMapreduce) {
  std::string f = Fixture("src/core/process_control.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  // fork (line 5) and kill (line 7) are flagged; the member-call wait on
  // line 8 is not a POSIX primitive.
  EXPECT_EQ(r.out,
            f +
                ":5: [process-control] fork() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n" +
                f +
                ":7: [process-control] kill() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n");
}

TEST(LintTest, SocketPrimitivesConfinedToMapreduce) {
  std::string f = Fixture("src/core/socket_use.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  // socket (line 6), listen (line 7), and connect (line 8) are flagged; the
  // member declaration `void listen(int)` (line 11) and the member call
  // server.listen (line 13) are not POSIX primitives.
  EXPECT_EQ(r.out,
            f +
                ":6: [process-control] socket() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n" +
                f +
                ":7: [process-control] listen() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n" +
                f +
                ":8: [process-control] connect() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n");
}

TEST(LintTest, ServerDirMayUseSockets) {
  // src/server/ shares the R7 exemption with src/mapreduce/: the serving
  // daemon is built on the same raw socket primitives.
  RunResult r = RunLint(Fixture("src/server/socket_server.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, WorkerBinaryMayUseProcessControl) {
  // tools/ddp_worker.cc shares the R7 exemption: the worker binary is the
  // subsystem's process entry point (it spawns and reaps its own sibling
  // workers for --workers N).
  RunResult r = RunLint(Fixture("tools/ddp_worker.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, OtherToolsKeepProcessControlBan) {
  // The exemption is pinned to the ddp_worker.cc file name, not to tools/.
  std::string f = Fixture("tools/other_tool.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":5: [process-control] fork() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n");
}

// The token-stream rewrite of the linter must not change a single byte of
// R1-R7 output: this fixture pair packs one violation per legacy rule and
// pins the full diagnostic stream captured from the pre-rewrite binary.
TEST(LintTest, LegacyRulesOutputUnchangedByRewrite) {
  std::string cc = Fixture("src/core/regress_rules.cc");
  std::string h = Fixture("src/core/regress_rules.h");
  RunResult r = RunLint(cc + " " + h);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(
      r.out,
      cc +
          ":13: [no-raw-sqrt] sqrt() in squared-space kernel code; keep "
          "distances in d^2 and take one sqrt at final assembly (annotate "
          "that site)\n" +
      cc +
          ":18: [ordered-emission] iteration over an unordered container in "
          "a scope that emits records, with no sort in scope; emission order "
          "must be derivable, not hash-order\n" +
      cc +
          ":24: [explicit-memory-order] implicit seq_cst increment/decrement "
          "of atomic 'hits'; use fetch_add/fetch_sub with an explicit "
          "std::memory_order_*\n" +
      cc +
          ":25: [explicit-memory-order] atomic load() without an explicit "
          "std::memory_order_* argument (implicit seq_cst hides the intended "
          "ordering)\n" +
      cc +
          ":29: [banned-nondeterminism] rand is a banned nondeterminism "
          "source: use ddp::Rng seeded from Options\n" +
      cc +
          ":33: [name-hygiene] span/metric name \"Bad-Name\" must match "
          "[a-z0-9_.]+ so exported traces and metric keys stay greppable and "
          "collator-safe\n" +
      cc +
          ":37: [process-control] fork() outside src/mapreduce/, "
          "src/server/, or tools/ddp_worker.cc; process lifecycle belongs to "
          "the worker supervisor (use the CommChannel/WorkerSupervisor "
          "API)\n" +
      h + ":1: [header-hygiene] header is missing #pragma once\n" +
      h +
          ":3: [header-hygiene] using namespace in a header leaks into every "
          "includer\n");
}

TEST(LintTest, SerdeSymmetryFlagsSwapAndDroppedField) {
  std::string f = Fixture("src/mapreduce/serde_swap.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  // TaskMsg swaps two same-kind fields (order diagnostic, names only);
  // AckMsg drops a field (kind diagnostic, full wire sequences).
  EXPECT_EQ(r.out,
            f +
                ":10: [serde-symmetry] codec for 'TaskMsg' reads fields out "
                "of order: Encode() writes [job_id, attempt, name] but "
                "Decode() reads [attempt, job_id, name]\n" +
            f +
                ":21: [serde-symmetry] codec for 'AckMsg' is asymmetric: "
                "Encode() writes [varint32(code), string(detail)] but "
                "Decode() reads [varint32(code)]\n");
}

TEST(LintTest, SerdeSymmetrySuppressedWithReasonIsClean) {
  RunResult r = RunLint(Fixture("src/mapreduce/serde_allowed.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, FrameExhaustiveFlagsMissingCasesAndBareDefault) {
  std::string f = Fixture("src/server/frame_missing.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":13: [frame-exhaustive] switch over MessageType does not "
                "handle [kResult, kShutdown]; handle every frame type or add "
                "an annotated default\n" +
            f +
                ":26: [frame-exhaustive] default on a switch over "
                "MessageType hides unhandled frame types [kTask, kResult, "
                "kShutdown]; handle them or annotate the default\n");
}

TEST(LintTest, FrameExhaustiveAnnotatedDefaultIsClean) {
  RunResult r = RunLint(Fixture("src/server/frame_default_allowed.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, LockAcrossBlockingFlagsSendAndSpillWrite) {
  std::string f = Fixture("src/mapreduce/lock_send.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  // Broadcast and Flush hold the guard across I/O; Drain unlocks first and
  // must stay clean.
  EXPECT_EQ(r.out,
            f +
                ":9: [lock-across-blocking] lock 'lock' is held across "
                "blocking Send(); move the I/O outside the critical section "
                "or annotate why holding is required\n" +
            f +
                ":14: [lock-across-blocking] lock 'lock' is held across "
                "blocking SpillFileWriter::Append(); move the I/O outside "
                "the critical section or annotate why holding is required\n");
}

TEST(LintTest, LockAcrossBlockingSuppressedWithReasonIsClean) {
  RunResult r = RunLint(Fixture("src/mapreduce/lock_send_allowed.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, NameRegistryFlagsUnregisteredNames) {
  std::string reg = Fixture("src/obs/registry_ok.h");
  std::string doc = Fixture("src/obs/observability_ok.md");
  std::string f = Fixture("src/obs/name_drift.cc");
  RunResult r = RunLint("--metric-registry " + reg + " --metric-doc " + doc +
                        " " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":5: [name-registry] metric name \"mr.unregistered_total\" "
                "is not in the metric-name registry; register it and "
                "reference the constant\n" +
            f +
                ":6: [name-registry] 'kMetricGhostSeconds' is not defined in "
                "the metric-name registry\n" +
            f +
                ":7: [name-registry] span name \"unregistered_phase\" is not "
                "a registered span name or category; register it and "
                "reference the constant\n");
}

TEST(LintTest, NameRegistryRegisteredConstantsAreClean) {
  RunResult r = RunLint("--metric-registry " + Fixture("src/obs/registry_ok.h") +
                        " --metric-doc " +
                        Fixture("src/obs/observability_ok.md") + " " +
                        Fixture("src/obs/name_ok.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, NameRegistryReportsDocDriftBothDirections) {
  std::string reg = Fixture("src/obs/registry_drift.h");
  std::string doc = Fixture("src/obs/observability_drift.md");
  RunResult r = RunLint("--metric-registry " + reg + " --metric-doc " + doc +
                        " " + Fixture("src/obs/name_ok.cc"));
  EXPECT_EQ(r.exit_code, 1);
  // Drift findings anchor in whichever side is stale: the doc's ghost
  // metric row and the registry's undocumented span constant.
  EXPECT_EQ(r.out,
            doc +
                ":14: [name-registry] documented metric \"mr.ghost_total\" "
                "has no registry constant\n" +
            reg +
                ":10: [name-registry] registry span \"orphan_phase\" is "
                "missing from the observability doc\n");
}

TEST(LintTest, JsonFormatEmitsOneObjectPerFinding) {
  std::string f = Fixture("src/core/raw_sqrt.cc");
  RunResult r = RunLint("--format=json " + f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            "{\n  \"files\": 1,\n  \"findings\": [\n    {\"path\": \"" + f +
                "\", \"line\": 3, \"rule\": \"no-raw-sqrt\", \"message\": "
                "\"sqrt() in squared-space kernel code; keep distances in "
                "d^2 and take one sqrt at final assembly (annotate that "
                "site)\", \"suppression\": \"// ddp-lint: "
                "allow(no-raw-sqrt) -- <reason>\"}\n  ]\n}\n");
}

TEST(LintTest, JsonFormatCleanFileEmitsEmptyFindings) {
  RunResult r = RunLint("--format json " + Fixture("src/core/raw_sqrt_allowed.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "{\n  \"files\": 1,\n  \"findings\": []\n}\n");
}

TEST(LintTest, MissingFileExitsTwo) {
  RunResult r = RunLint(Fixture("src/core/does_not_exist.cc"));
  EXPECT_EQ(r.exit_code, 2);
}

TEST(LintTest, UsageErrorExitsTwo) {
  EXPECT_EQ(RunLint("--bogus-flag").exit_code, 2);
  EXPECT_EQ(RunLint("").exit_code, 2);  // no root, no files
  EXPECT_EQ(RunLint("--format xml " + Fixture("src/core/raw_sqrt.cc")).exit_code,
            2);
}

TEST(LintTest, MissingExplicitRegistryExitsTwo) {
  // --metric-registry names a file explicitly, so it failing to load is an
  // I/O error (the *default* registry path is allowed to be absent — the
  // rule just stays off).
  RunResult r = RunLint("--metric-registry " +
                        Fixture("src/obs/does_not_exist.h") + " " +
                        Fixture("src/obs/name_ok.cc"));
  EXPECT_EQ(r.exit_code, 2);
}

}  // namespace

// End-to-end tests for tools/ddp_lint against the checked-in fixture tree in
// tests/lint_fixtures/. The fixtures mirror real tree paths (src/core,
// src/common, src/mapreduce, tools/) so the path-scoped rules fire exactly
// as they do over the real tree; the tree scan itself skips anything under a
// lint_fixtures directory. Each test pins the exact diagnostic lines and the exit code, so
// a behavior change in the linter fails here before it confuses CI.

#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

#ifndef DDP_LINT_BIN
#error "DDP_LINT_BIN must point at the ddp_lint executable"
#endif
#ifndef DDP_LINT_FIXTURES
#error "DDP_LINT_FIXTURES must point at tests/lint_fixtures"
#endif

struct RunResult {
  int exit_code = -1;
  std::string out;  // stdout only; stderr carries the summary line
};

RunResult RunLint(const std::string& args) {
  RunResult r;
  std::string cmd = std::string(DDP_LINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) r.out.append(buf, n);
  int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string Fixture(const std::string& rel) {
  return std::string(DDP_LINT_FIXTURES) + "/" + rel;
}

TEST(LintTest, ListRulesNamesEveryRule) {
  RunResult r = RunLint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"no-raw-sqrt", "ordered-emission", "explicit-memory-order",
        "banned-nondeterminism", "name-hygiene", "header-hygiene",
        "process-control", "suppression-missing-reason",
        "unused-suppression"}) {
    EXPECT_NE(r.out.find(rule), std::string::npos) << "missing rule " << rule;
  }
}

TEST(LintTest, RawSqrtViolation) {
  std::string f = Fixture("src/core/raw_sqrt.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":3: [no-raw-sqrt] sqrt() in squared-space kernel code; keep "
                "distances in d^2 and take one sqrt at final assembly "
                "(annotate that site)\n");
}

TEST(LintTest, SuppressionWithReasonIsClean) {
  RunResult r = RunLint(Fixture("src/core/raw_sqrt_allowed.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, SuppressionWithoutReasonReportsBoth) {
  std::string f = Fixture("src/core/raw_sqrt_noreason.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":3: [suppression-missing-reason] allow(no-raw-sqrt) has no "
                "'-- <reason>'; suppressions must say why\n" +
                f +
                ":4: [no-raw-sqrt] sqrt() in squared-space kernel code; keep "
                "distances in d^2 and take one sqrt at final assembly "
                "(annotate that site)\n");
}

TEST(LintTest, UnusedSuppressionIsReported) {
  std::string f = Fixture("src/core/unused_allow.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":3: [unused-suppression] allow(no-raw-sqrt) suppresses "
                "nothing on its target line; remove it\n");
}

TEST(LintTest, OrderedEmissionFlagsHashOrderOnly) {
  std::string f = Fixture("src/mapreduce/unordered_emit.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  // EmitAll (line 6) is flagged; the collect-then-sort sibling is clean.
  EXPECT_EQ(r.out,
            f +
                ":6: [ordered-emission] iteration over an unordered container "
                "in a scope that emits records, with no sort in scope; "
                "emission order must be derivable, not hash-order\n");
}

TEST(LintTest, ExplicitMemoryOrderFlagsImplicitOps) {
  std::string f = Fixture("src/common/atomic_order.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":7: [explicit-memory-order] implicit seq_cst "
                "increment/decrement of atomic 'counter'; use "
                "fetch_add/fetch_sub with an explicit std::memory_order_*\n" +
                f +
                ":9: [explicit-memory-order] atomic load() without an "
                "explicit std::memory_order_* argument (implicit seq_cst "
                "hides the intended ordering)\n");
}

TEST(LintTest, BannedNondeterminism) {
  std::string f = Fixture("src/core/nondet.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":3: [banned-nondeterminism] rand is a banned nondeterminism "
                "source: use ddp::Rng seeded from Options\n");
}

TEST(LintTest, NameHygieneFlagsBadLiteralOnly) {
  std::string f = Fixture("src/common/bad_name.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  // "good_name.ok" on line 4 passes; only "Bad-Name" is flagged.
  EXPECT_EQ(r.out,
            f +
                ":3: [name-hygiene] span/metric name \"Bad-Name\" must match "
                "[a-z0-9_.]+ so exported traces and metric keys stay "
                "greppable and collator-safe\n");
}

TEST(LintTest, HeaderHygiene) {
  std::string f = Fixture("src/common/bad_header.h");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f + ":1: [header-hygiene] header is missing #pragma once\n" + f +
                ":2: [header-hygiene] using namespace in a header leaks into "
                "every includer\n");
}

TEST(LintTest, ProcessControlConfinedToMapreduce) {
  std::string f = Fixture("src/core/process_control.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  // fork (line 5) and kill (line 7) are flagged; the member-call wait on
  // line 8 is not a POSIX primitive.
  EXPECT_EQ(r.out,
            f +
                ":5: [process-control] fork() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n" +
                f +
                ":7: [process-control] kill() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n");
}

TEST(LintTest, SocketPrimitivesConfinedToMapreduce) {
  std::string f = Fixture("src/core/socket_use.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  // socket (line 6), listen (line 7), and connect (line 8) are flagged; the
  // member declaration `void listen(int)` (line 11) and the member call
  // server.listen (line 13) are not POSIX primitives.
  EXPECT_EQ(r.out,
            f +
                ":6: [process-control] socket() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n" +
                f +
                ":7: [process-control] listen() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n" +
                f +
                ":8: [process-control] connect() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n");
}

TEST(LintTest, ServerDirMayUseSockets) {
  // src/server/ shares the R7 exemption with src/mapreduce/: the serving
  // daemon is built on the same raw socket primitives.
  RunResult r = RunLint(Fixture("src/server/socket_server.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, WorkerBinaryMayUseProcessControl) {
  // tools/ddp_worker.cc shares the R7 exemption: the worker binary is the
  // subsystem's process entry point (it spawns and reaps its own sibling
  // workers for --workers N).
  RunResult r = RunLint(Fixture("tools/ddp_worker.cc"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "");
}

TEST(LintTest, OtherToolsKeepProcessControlBan) {
  // The exemption is pinned to the ddp_worker.cc file name, not to tools/.
  std::string f = Fixture("tools/other_tool.cc");
  RunResult r = RunLint(f);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out,
            f +
                ":5: [process-control] fork() outside src/mapreduce/, "
                "src/server/, or tools/ddp_worker.cc; process lifecycle "
                "belongs to the worker supervisor (use the "
                "CommChannel/WorkerSupervisor API)\n");
}

TEST(LintTest, MissingFileExitsTwo) {
  RunResult r = RunLint(Fixture("src/core/does_not_exist.cc"));
  EXPECT_EQ(r.exit_code, 2);
}

TEST(LintTest, UsageErrorExitsTwo) {
  EXPECT_EQ(RunLint("--bogus-flag").exit_code, 2);
  EXPECT_EQ(RunLint("").exit_code, 2);  // no root, no files
}

}  // namespace

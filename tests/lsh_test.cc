#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "dataset/generators.h"
#include "lsh/hash_group.h"
#include "lsh/partitioner.h"
#include "lsh/pstable_hash.h"
#include "lsh/theory.h"
#include "lsh/tuning.h"

namespace ddp {
namespace lsh {
namespace {

// ------------------------------------------------------------ PStableHash

TEST(PStableHashTest, HashIsFloorOfProjection) {
  PStableHash h({1.0, 0.0}, 0.5, 2.0);  // h(p) = floor((p[0] + 0.5) / 2)
  EXPECT_EQ(h.Hash(std::vector<double>{0.0, 9.0}), 0);
  EXPECT_EQ(h.Hash(std::vector<double>{1.6, 9.0}), 1);
  EXPECT_EQ(h.Hash(std::vector<double>{-0.6, 9.0}), -1);
}

TEST(PStableHashTest, ProjectionIsAffine) {
  PStableHash h({2.0, -1.0}, 0.25, 1.0);
  EXPECT_DOUBLE_EQ(h.Project(std::vector<double>{1.0, 3.0}), 2.0 - 3.0 + 0.25);
}

TEST(PStableHashTest, RandomDrawRespectsDimAndWidth) {
  Rng rng(3);
  PStableHash h = PStableHash::Random(10, 4.0, &rng);
  EXPECT_EQ(h.dim(), 10u);
  EXPECT_DOUBLE_EQ(h.width(), 4.0);
  EXPECT_GE(h.offset(), 0.0);
  EXPECT_LT(h.offset(), 4.0);
}

TEST(PStableHashTest, NearbyPointsUsuallyCollide) {
  // Points at distance << w should share a slot almost always.
  Rng rng(17);
  int collisions = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    PStableHash h = PStableHash::Random(4, 50.0, &rng);
    std::vector<double> p = rng.GaussianVector(4);
    std::vector<double> q = p;
    q[0] += 0.01;
    if (h.Hash(p) == h.Hash(q)) ++collisions;
  }
  EXPECT_GT(collisions, trials * 9 / 10);
}

TEST(PStableHashTest, DistantPointsRarelyCollideWithNarrowSlots) {
  Rng rng(19);
  int collisions = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    PStableHash h = PStableHash::Random(4, 0.1, &rng);
    std::vector<double> p = rng.GaussianVector(4);
    std::vector<double> q = rng.GaussianVector(4);
    for (size_t d = 0; d < 4; ++d) q[d] += 10.0;  // far away
    if (h.Hash(p) == h.Hash(q)) ++collisions;
  }
  EXPECT_LT(collisions, trials / 10);
}

// -------------------------------------------------------------- HashGroup

TEST(HashGroupTest, KeyHasPiComponents) {
  Rng rng(1);
  HashGroup g = HashGroup::Random(3, 5, 2.0, &rng);
  EXPECT_EQ(g.pi(), 5u);
  BucketKey key = g.Key(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_EQ(key.size(), 5u);
}

TEST(HashGroupTest, KeyIntoMatchesKey) {
  Rng rng(2);
  HashGroup g = HashGroup::Random(3, 4, 2.0, &rng);
  std::vector<double> p = {0.5, -1.0, 2.0};
  BucketKey a = g.Key(p);
  BucketKey b;
  g.KeyInto(p, &b);
  EXPECT_EQ(a, b);
}

TEST(HashGroupTest, SamePointSameKey) {
  Rng rng(3);
  HashGroup g = HashGroup::Random(2, 3, 1.0, &rng);
  std::vector<double> p = {4.2, -7.0};
  EXPECT_EQ(g.Key(p), g.Key(p));
}

TEST(HashGroupTest, MorePiMeansFinerPartition) {
  // With more hash functions per group, a fixed point set lands in at least
  // as many distinct buckets.
  auto ds = gen::GaussianMixture(400, 4, 4, 100.0, 5.0, 5);
  ASSERT_TRUE(ds.ok());
  auto count_buckets = [&](size_t pi) {
    Rng rng(77);
    HashGroup g = HashGroup::Random(4, pi, 20.0, &rng);
    std::set<BucketKey> buckets;
    for (size_t i = 0; i < ds->size(); ++i) {
      buckets.insert(g.Key(ds->point(static_cast<PointId>(i))));
    }
    return buckets.size();
  };
  EXPECT_LE(count_buckets(1), count_buckets(8));
}

// ------------------------------------------------------------ Partitioner

TEST(PartitionerTest, CreateValidatesArgs) {
  EXPECT_FALSE(MultiLshPartitioner::Create(0, 2, 2, 1.0, 1).ok());
  EXPECT_FALSE(MultiLshPartitioner::Create(2, 0, 2, 1.0, 1).ok());
  EXPECT_FALSE(MultiLshPartitioner::Create(2, 2, 0, 1.0, 1).ok());
  EXPECT_FALSE(MultiLshPartitioner::Create(2, 2, 2, 0.0, 1).ok());
  EXPECT_TRUE(MultiLshPartitioner::Create(2, 2, 2, 1.0, 1).ok());
}

TEST(PartitionerTest, LayoutsPartitionAllPoints) {
  auto ds = gen::GaussianMixture(500, 3, 5, 50.0, 2.0, 9);
  ASSERT_TRUE(ds.ok());
  auto part = MultiLshPartitioner::Create(3, 4, 3, 10.0, 2);
  ASSERT_TRUE(part.ok());
  auto layouts = part->PartitionAll(*ds);
  ASSERT_EQ(layouts.size(), 4u);
  for (const auto& layout : layouts) {
    size_t total = 0;
    std::set<PointId> seen;
    for (const auto& [key, ids] : layout) {
      total += ids.size();
      seen.insert(ids.begin(), ids.end());
    }
    // Disjoint cover: every point in exactly one bucket per layout.
    EXPECT_EQ(total, ds->size());
    EXPECT_EQ(seen.size(), ds->size());
  }
}

TEST(PartitionerTest, DifferentLayoutsDiffer) {
  auto ds = gen::GaussianMixture(300, 3, 3, 50.0, 3.0, 9);
  ASSERT_TRUE(ds.ok());
  auto part = MultiLshPartitioner::Create(3, 2, 2, 5.0, 2);
  ASSERT_TRUE(part.ok());
  std::vector<double> p(ds->point(0).begin(), ds->point(0).end());
  // Keys under layout 0 and layout 1 come from independent hash groups; the
  // same point gets (almost surely) different signatures.
  EXPECT_NE(part->Key(0, p), part->Key(1, p));
}

TEST(PartitionerTest, DeterministicInSeed) {
  auto p1 = MultiLshPartitioner::Create(4, 3, 2, 2.0, 123);
  auto p2 = MultiLshPartitioner::Create(4, 3, 2, 2.0, 123);
  ASSERT_TRUE(p1.ok() && p2.ok());
  std::vector<double> pt = {0.1, 0.2, 0.3, 0.4};
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(p1->Key(m, pt), p2->Key(m, pt));
  }
}

TEST(PartitionerTest, SmallerWidthMakesMoreBuckets) {
  auto ds = gen::GaussianMixture(600, 3, 6, 100.0, 4.0, 11);
  ASSERT_TRUE(ds.ok());
  auto wide = MultiLshPartitioner::Create(3, 1, 3, 200.0, 5);
  auto narrow = MultiLshPartitioner::Create(3, 1, 3, 2.0, 5);
  ASSERT_TRUE(wide.ok() && narrow.ok());
  auto sw = wide->ComputeStats(*ds);
  auto sn = narrow->ComputeStats(*ds);
  EXPECT_LT(sw[0].num_buckets, sn[0].num_buckets);
  // Narrower slots shrink the quadratic cost term of Eq. (8).
  EXPECT_GT(sw[0].sum_squared_sizes, sn[0].sum_squared_sizes);
}

TEST(PartitionerTest, StatsInvariants) {
  auto ds = gen::GaussianMixture(200, 2, 2, 10.0, 1.0, 3);
  ASSERT_TRUE(ds.ok());
  auto part = MultiLshPartitioner::Create(2, 2, 2, 3.0, 8);
  ASSERT_TRUE(part.ok());
  for (const auto& s : part->ComputeStats(*ds)) {
    EXPECT_GE(s.num_buckets, 1u);
    EXPECT_GE(s.largest_bucket, 1u);
    EXPECT_LE(s.largest_bucket, ds->size());
    // sum of squares bounded by (max size) * N and at least N.
    EXPECT_GE(s.sum_squared_sizes, ds->size());
    EXPECT_LE(s.sum_squared_sizes,
              static_cast<uint64_t>(s.largest_bucket) * ds->size());
  }
}

// ----------------------------------------------------------------- Theory

TEST(TheoryTest, NormCdfKnownValues) {
  EXPECT_NEAR(NormCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormCdf(-1.96), 0.025, 1e-3);
}

TEST(TheoryTest, PRhoLowerBoundBehaviour) {
  // Larger width -> higher probability; clamped to [0, 1].
  EXPECT_GT(PRhoLowerBound(100.0, 1.0), PRhoLowerBound(10.0, 1.0));
  EXPECT_EQ(PRhoLowerBound(0.1, 100.0), 0.0);  // clamp at 0
  EXPECT_NEAR(PRhoLowerBound(1e9, 1.0), 1.0, 1e-8);
  EXPECT_EQ(PRhoLowerBound(0.0, 1.0), 0.0);
  // Exact formula check: 1 - 4*dc/(sqrt(2pi)*w).
  double w = 20.0, dc = 1.0;
  EXPECT_NEAR(PRhoLowerBound(w, dc), 1.0 - 4.0 * dc / (std::sqrt(2 * M_PI) * w),
              1e-12);
}

TEST(TheoryTest, PCollisionBoundaryCases) {
  EXPECT_DOUBLE_EQ(PCollision(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(PCollision(1.0, 0.0), 0.0);
  // Monotone decreasing in distance.
  EXPECT_GT(PCollision(0.5, 4.0), PCollision(1.0, 4.0));
  EXPECT_GT(PCollision(1.0, 4.0), PCollision(5.0, 4.0));
  // Monotone increasing in width.
  EXPECT_LT(PCollision(1.0, 1.0), PCollision(1.0, 10.0));
  // Probability range.
  for (double d : {0.1, 1.0, 10.0}) {
    for (double w : {0.5, 2.0, 50.0}) {
      double p = PCollision(d, w);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(TheoryTest, PCollisionMatchesMonteCarlo) {
  // Empirical collision rate of the real hash function vs. Lemma 3 formula.
  const double w = 3.0;
  const double dist = 2.0;
  Rng rng(23);
  int collisions = 0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    PStableHash h = PStableHash::Random(6, w, &rng);
    std::vector<double> p = rng.GaussianVector(6);
    // Random direction offset of length `dist`.
    std::vector<double> dir = rng.GaussianVector(6);
    double norm = 0.0;
    for (double x : dir) norm += x * x;
    norm = std::sqrt(norm);
    std::vector<double> q = p;
    for (size_t d = 0; d < 6; ++d) q[d] += dist * dir[d] / norm;
    if (h.Hash(p) == h.Hash(q)) ++collisions;
  }
  double empirical = static_cast<double>(collisions) / trials;
  EXPECT_NEAR(empirical, PCollision(dist, w), 0.01);
}

TEST(TheoryTest, ExpectedRhoAccuracyMonotonicity) {
  double dc = 1.0, w = 30.0;
  // More layouts help.
  EXPECT_LT(ExpectedRhoAccuracy(w, 3, 1, dc), ExpectedRhoAccuracy(w, 3, 10, dc));
  // More hash functions per group hurt (finer partitions).
  EXPECT_GT(ExpectedRhoAccuracy(w, 1, 5, dc), ExpectedRhoAccuracy(w, 8, 5, dc));
  // Wider slots help.
  EXPECT_LT(ExpectedRhoAccuracy(10.0, 3, 5, dc),
            ExpectedRhoAccuracy(100.0, 3, 5, dc));
}

TEST(TheoryTest, ExpectedDeltaAccuracyDropsWithUpslopeDistance) {
  // Theorem 2's key implication: delta is accurate for small upslope
  // distances, inaccurate for far-away upslope points (density peaks).
  double w = 10.0;
  EXPECT_GT(ExpectedDeltaAccuracy(0.5, w, 3, 10),
            ExpectedDeltaAccuracy(20.0, w, 3, 10));
  EXPECT_NEAR(ExpectedDeltaAccuracy(1e-9, w, 3, 10), 1.0, 1e-6);
}

// ----------------------------------------------------------------- Tuning

TEST(TuningTest, SolveMinimalWidthInvertsAccuracyFormula) {
  double dc = 2.5;
  for (double accuracy : {0.5, 0.9, 0.99, 0.999}) {
    for (size_t M : {1ul, 5ul, 10ul, 20ul}) {
      for (size_t pi : {1ul, 3ul, 10ul}) {
        auto w = SolveMinimalWidth(accuracy, M, pi, dc);
        ASSERT_TRUE(w.ok());
        // Plugging w back must achieve (almost exactly) the target.
        EXPECT_NEAR(ExpectedRhoAccuracy(*w, pi, M, dc), accuracy, 1e-9)
            << "A=" << accuracy << " M=" << M << " pi=" << pi;
      }
    }
  }
}

TEST(TuningTest, HigherAccuracyNeedsWiderSlots) {
  double dc = 1.0;
  auto w90 = SolveMinimalWidth(0.90, 10, 3, dc);
  auto w99 = SolveMinimalWidth(0.99, 10, 3, dc);
  ASSERT_TRUE(w90.ok() && w99.ok());
  EXPECT_LT(*w90, *w99);
}

TEST(TuningTest, MoreLayoutsAllowNarrowerSlots) {
  double dc = 1.0;
  auto w_few = SolveMinimalWidth(0.99, 2, 3, dc);
  auto w_many = SolveMinimalWidth(0.99, 20, 3, dc);
  ASSERT_TRUE(w_few.ok() && w_many.ok());
  EXPECT_GT(*w_few, *w_many);
}

TEST(TuningTest, MorePiNeedsWiderSlots) {
  double dc = 1.0;
  auto w3 = SolveMinimalWidth(0.99, 10, 3, dc);
  auto w10 = SolveMinimalWidth(0.99, 10, 10, dc);
  ASSERT_TRUE(w3.ok() && w10.ok());
  EXPECT_LT(*w3, *w10);
}

TEST(TuningTest, InvalidInputsRejected) {
  EXPECT_FALSE(SolveMinimalWidth(0.0, 10, 3, 1.0).ok());
  EXPECT_FALSE(SolveMinimalWidth(1.0, 10, 3, 1.0).ok());
  EXPECT_FALSE(SolveMinimalWidth(-0.5, 10, 3, 1.0).ok());
  EXPECT_FALSE(SolveMinimalWidth(0.99, 0, 3, 1.0).ok());
  EXPECT_FALSE(SolveMinimalWidth(0.99, 10, 0, 1.0).ok());
  EXPECT_FALSE(SolveMinimalWidth(0.99, 10, 3, 0.0).ok());
}

TEST(TuningTest, TuneParamsFillsWidth) {
  auto params = TuneParams(0.99, 10, 3, 2.0);
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->num_layouts, 10u);
  EXPECT_EQ(params->pi, 3u);
  EXPECT_GT(params->width, 0.0);
  EXPECT_NE(params->ToString().find("M=10"), std::string::npos);
}

TEST(TuningTest, WidthScalesLinearlyWithCutoff) {
  auto w1 = SolveMinimalWidth(0.99, 10, 3, 1.0);
  auto w2 = SolveMinimalWidth(0.99, 10, 3, 2.0);
  ASSERT_TRUE(w1.ok() && w2.ok());
  EXPECT_NEAR(*w2 / *w1, 2.0, 1e-9);
}

}  // namespace
}  // namespace lsh
}  // namespace ddp

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "core/assignment.h"
#include "core/cutoff.h"
#include "core/decision_graph.h"
#include "core/dp_types.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"

namespace ddp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A tiny hand-checkable 1-D dataset: two groups around 0 and 100.
Dataset TwoGroups() {
  Dataset ds(1);
  for (double x : {0.0, 1.0, 2.0, 100.0, 101.0}) {
    ds.Add(std::vector<double>{x});
  }
  return ds;
}

// ------------------------------------------------------------- DenserThan

TEST(DpTypesTest, DenserThanTotalOrder) {
  EXPECT_TRUE(DenserThan(5, 1, 3, 0));    // higher rho wins
  EXPECT_FALSE(DenserThan(3, 0, 5, 1));
  EXPECT_TRUE(DenserThan(5, 0, 5, 1));    // ties: smaller id wins
  EXPECT_FALSE(DenserThan(5, 1, 5, 0));
  EXPECT_FALSE(DenserThan(5, 1, 5, 1));   // irreflexive
}

TEST(DpTypesTest, ScoresResize) {
  DpScores s;
  s.Resize(3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.rho[0], 0u);
  EXPECT_EQ(s.delta[2], kInf);
  EXPECT_EQ(s.upslope[1], kInvalidPointId);
}

TEST(DpTypesTest, ClusterResultSummary) {
  ClusterResult r;
  r.peaks = {0, 3};
  r.assignment = {0, 0, 1, 1, -1};
  std::string s = r.Summary();
  EXPECT_NE(s.find("2 clusters"), std::string::npos);
  EXPECT_NE(s.find("unassigned=1"), std::string::npos);
}

// ---------------------------------------------------------- Sequential DP

TEST(SequentialDpTest, RhoOnHandCheckedData) {
  Dataset ds = TwoGroups();
  CountingMetric metric;
  auto rho = ComputeExactRho(ds, 1.5, metric);
  ASSERT_TRUE(rho.ok());
  // d_c = 1.5: neighbors strictly closer than 1.5.
  // Point 0 (x=0): neighbor {1}. Point 1 (x=1): {0, 2}. Point 2: {1}.
  // Point 3 (x=100): {4}. Point 4: {3}.
  EXPECT_EQ((*rho)[0], 1u);
  EXPECT_EQ((*rho)[1], 2u);
  EXPECT_EQ((*rho)[2], 1u);
  EXPECT_EQ((*rho)[3], 1u);
  EXPECT_EQ((*rho)[4], 1u);
}

TEST(SequentialDpTest, DeltaAndUpslopeOnHandCheckedData) {
  Dataset ds = TwoGroups();
  CountingMetric metric;
  auto scores = ComputeExactDp(ds, 1.5, metric);
  ASSERT_TRUE(scores.ok());
  // Density order: point 1 (rho=2) first, then 0, 2, 3, 4 (rho=1, id asc).
  // Point 1 is the absolute peak: delta = +inf (pre-rectification).
  EXPECT_EQ(scores->delta[1], kInf);
  EXPECT_EQ(scores->upslope[1], kInvalidPointId);
  // Point 0: nearest denser is 1 at distance 1.
  EXPECT_DOUBLE_EQ(scores->delta[0], 1.0);
  EXPECT_EQ(scores->upslope[0], 1u);
  // Point 2: nearest denser is 1 at distance 1.
  EXPECT_DOUBLE_EQ(scores->delta[2], 1.0);
  EXPECT_EQ(scores->upslope[2], 1u);
  // Point 3: denser points are {1, 0, 2} (all with smaller id at same or
  // higher rho): nearest is 2 at distance 98.
  EXPECT_DOUBLE_EQ(scores->delta[3], 98.0);
  EXPECT_EQ(scores->upslope[3], 2u);
  // Point 4 (x=101): denser includes 3 at distance 1.
  EXPECT_DOUBLE_EQ(scores->delta[4], 1.0);
  EXPECT_EQ(scores->upslope[4], 3u);
}

TEST(SequentialDpTest, InputValidation) {
  Dataset empty(2);
  CountingMetric metric;
  EXPECT_FALSE(ComputeExactRho(empty, 1.0, metric).ok());
  Dataset ds = TwoGroups();
  EXPECT_FALSE(ComputeExactRho(ds, 0.0, metric).ok());
  EXPECT_FALSE(ComputeExactRho(ds, -1.0, metric).ok());
  EXPECT_FALSE(
      ComputeDeltaGivenRho(ds, std::vector<uint32_t>{1, 2}, metric).ok());
}

TEST(SequentialDpTest, RhoCountsEachPairOnce) {
  auto ds = gen::GaussianMixture(100, 3, 2, 10.0, 1.0, 1);
  ASSERT_TRUE(ds.ok());
  DistanceCounter counter;
  CountingMetric metric(&counter);
  ASSERT_TRUE(ComputeExactRho(*ds, 1.0, metric).ok());
  EXPECT_EQ(counter.value(), 100u * 99u / 2u);
}

TEST(SequentialDpTest, TriangleFilterGivesIdenticalResults) {
  auto ds = gen::GaussianMixture(300, 4, 3, 50.0, 2.0, 13);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  SequentialDpOptions plain;
  SequentialDpOptions filtered;
  filtered.use_triangle_filter = true;
  auto a = ComputeExactDp(*ds, 3.0, metric, plain);
  auto b = ComputeExactDp(*ds, 3.0, metric, filtered);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rho, b->rho);
  EXPECT_EQ(a->delta, b->delta);
  EXPECT_EQ(a->upslope, b->upslope);
}

TEST(SequentialDpTest, TriangleFilterSavesDistanceComputations) {
  // Spread clusters so the projection bound actually prunes.
  auto ds = gen::GaussianMixture(400, 2, 4, 1000.0, 1.0, 21);
  ASSERT_TRUE(ds.ok());
  DistanceCounter c_plain, c_filtered;
  SequentialDpOptions filtered;
  filtered.use_triangle_filter = true;
  ASSERT_TRUE(
      ComputeExactRho(*ds, 2.0, CountingMetric(&c_plain), {}).ok());
  ASSERT_TRUE(
      ComputeExactRho(*ds, 2.0, CountingMetric(&c_filtered), filtered).ok());
  EXPECT_LT(c_filtered.value(), c_plain.value());
}

TEST(SequentialDpTest, ExactlyOneAbsolutePeak) {
  auto ds = gen::GaussianMixture(200, 2, 3, 20.0, 1.0, 31);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto scores = ComputeExactDp(*ds, 1.0, metric);
  ASSERT_TRUE(scores.ok());
  size_t inf_count = 0;
  for (double d : scores->delta) {
    if (std::isinf(d)) ++inf_count;
  }
  EXPECT_EQ(inf_count, 1u);
}

TEST(SequentialDpTest, UpslopeIsAlwaysDenser) {
  auto ds = gen::GaussianMixture(200, 3, 4, 30.0, 2.0, 37);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto scores = ComputeExactDp(*ds, 2.0, metric);
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < scores->size(); ++i) {
    PointId u = scores->upslope[i];
    if (u == kInvalidPointId) continue;
    EXPECT_TRUE(DenserThan(scores->rho[u], u, scores->rho[i],
                           static_cast<PointId>(i)));
  }
}

TEST(SequentialDpTest, LocalKernelsMatchGlobalOnFullIdSet) {
  auto ds = gen::GaussianMixture(150, 3, 3, 20.0, 1.5, 41);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  std::vector<PointId> all(ds->size());
  std::iota(all.begin(), all.end(), 0);
  const double dc = 2.0;
  LocalDpResult local_rho = ComputeLocalRho(*ds, all, dc, metric);
  auto global_rho = ComputeExactRho(*ds, dc, metric);
  ASSERT_TRUE(global_rho.ok());
  EXPECT_EQ(local_rho.rho, *global_rho);

  LocalDpResult local_delta =
      ComputeLocalDelta(*ds, all, local_rho.rho, metric);
  auto global = ComputeDeltaGivenRho(*ds, *global_rho, metric);
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(local_delta.delta, global->delta);
  EXPECT_EQ(local_delta.upslope, global->upslope);
}

TEST(SequentialDpTest, LocalRhoOnSubsetUndercounts) {
  auto ds = gen::GaussianMixture(200, 2, 2, 10.0, 2.0, 43);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  const double dc = 2.0;
  auto global = ComputeExactRho(*ds, dc, metric);
  ASSERT_TRUE(global.ok());
  // Any strict subset can only see fewer neighbors.
  std::vector<PointId> subset;
  for (PointId i = 0; i < 100; ++i) subset.push_back(i);
  LocalDpResult local = ComputeLocalRho(*ds, subset, dc, metric);
  for (size_t k = 0; k < subset.size(); ++k) {
    EXPECT_LE(local.rho[k], (*global)[subset[k]]);
  }
}

// ----------------------------------------------------------------- Cutoff

TEST(CutoffTest, ExactPercentileOnTinySet) {
  // 3 points on a line: pairwise distances {1, 1, 2}.
  Dataset ds(1);
  ds.Add(std::vector<double>{0.0});
  ds.Add(std::vector<double>{1.0});
  ds.Add(std::vector<double>{2.0});
  CountingMetric metric;
  CutoffOptions options;
  options.percentile = 0.5;
  options.sample_pairs = 1000;  // covers all 3 pairs exactly
  auto dc = ChooseCutoff(ds, metric, options);
  ASSERT_TRUE(dc.ok());
  EXPECT_DOUBLE_EQ(*dc, 1.0);
}

TEST(CutoffTest, PercentileMonotone) {
  auto ds = gen::GaussianMixture(500, 3, 4, 50.0, 2.0, 51);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  CutoffOptions lo, hi;
  lo.percentile = 0.01;
  hi.percentile = 0.20;
  auto d_lo = ChooseCutoff(*ds, metric, lo);
  auto d_hi = ChooseCutoff(*ds, metric, hi);
  ASSERT_TRUE(d_lo.ok() && d_hi.ok());
  EXPECT_LT(*d_lo, *d_hi);
}

TEST(CutoffTest, TargetsNeighborhoodFraction) {
  // With the 2% percentile, average rho should be around 2% of N.
  auto ds = gen::GaussianMixture(400, 2, 1, 1.0, 1.0, 53);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  CutoffOptions options;
  options.percentile = 0.02;
  options.sample_pairs = 1 << 20;  // exact for this N
  auto dc = ChooseCutoff(*ds, metric, options);
  ASSERT_TRUE(dc.ok());
  auto rho = ComputeExactRho(*ds, *dc, metric);
  ASSERT_TRUE(rho.ok());
  double mean_rho = 0.0;
  for (uint32_t r : *rho) mean_rho += r;
  mean_rho /= static_cast<double>(rho->size());
  double fraction = mean_rho / static_cast<double>(ds->size());
  EXPECT_GT(fraction, 0.005);
  EXPECT_LT(fraction, 0.08);
}

TEST(CutoffTest, Validation) {
  Dataset one(1);
  one.Add(std::vector<double>{0.0});
  CountingMetric metric;
  EXPECT_FALSE(ChooseCutoff(one, metric).ok());
  Dataset ds = TwoGroups();
  CutoffOptions bad;
  bad.percentile = 0.0;
  EXPECT_FALSE(ChooseCutoff(ds, metric, bad).ok());
  bad.percentile = 1.0;
  EXPECT_FALSE(ChooseCutoff(ds, metric, bad).ok());
  CutoffOptions zero_samples;
  zero_samples.sample_pairs = 0;
  EXPECT_FALSE(ChooseCutoff(ds, metric, zero_samples).ok());
}

TEST(CutoffTest, AllDuplicatePointsIsOutOfRange) {
  Dataset ds(1);
  for (int i = 0; i < 5; ++i) ds.Add(std::vector<double>{7.0});
  CountingMetric metric;
  EXPECT_TRUE(ChooseCutoff(ds, metric).status().IsOutOfRange());
}

// --------------------------------------------------------- Decision graph

TEST(DecisionGraphTest, RectifiesInfiniteDelta) {
  DpScores scores;
  scores.Resize(3);
  scores.rho = {5, 3, 1};
  scores.delta = {kInf, 2.0, 1.0};
  DecisionGraph graph = DecisionGraph::FromScores(scores);
  EXPECT_DOUBLE_EQ(graph.max_finite_delta(), 2.0);
  EXPECT_DOUBLE_EQ(graph.delta()[0], 2.0);  // inf -> max finite
  EXPECT_DOUBLE_EQ(graph.delta()[1], 2.0);
}

TEST(DecisionGraphTest, AllInfiniteFallsBackToOne) {
  DpScores scores;
  scores.Resize(2);
  scores.rho = {1, 1};
  scores.delta = {kInf, kInf};
  DecisionGraph graph = DecisionGraph::FromScores(scores);
  EXPECT_DOUBLE_EQ(graph.delta()[0], 1.0);
}

TEST(DecisionGraphTest, ThresholdSelection) {
  DpScores scores;
  scores.Resize(4);
  scores.rho = {10, 8, 2, 9};
  scores.delta = {5.0, 0.5, 6.0, 4.0};
  DecisionGraph graph = DecisionGraph::FromScores(scores);
  auto peaks = graph.SelectByThreshold(5.0, 3.0);
  // rho > 5 and delta > 3: points 0 (10, 5) and 3 (9, 4).
  EXPECT_EQ(peaks, (std::vector<PointId>{0, 3}));
}

TEST(DecisionGraphTest, TopKByGamma) {
  DpScores scores;
  scores.Resize(4);
  scores.rho = {10, 1, 8, 2};
  scores.delta = {10.0, 1.0, 9.0, 30.0};
  DecisionGraph graph = DecisionGraph::FromScores(scores);
  // gamma: 100, 1, 72, 60.
  auto top2 = graph.SelectTopK(2);
  EXPECT_EQ(top2, (std::vector<PointId>{0, 2}));
  auto top_all = graph.SelectTopK(10);  // clamped to n
  EXPECT_EQ(top_all.size(), 4u);
}

TEST(DecisionGraphTest, GammaGapFindsObviousPeaks) {
  // Two dominant gamma values, then noise an order of magnitude below.
  DpScores scores;
  scores.Resize(6);
  scores.rho = {100, 90, 5, 4, 3, 2};
  scores.delta = {50.0, 40.0, 1.0, 1.0, 1.0, 1.0};
  DecisionGraph graph = DecisionGraph::FromScores(scores);
  auto peaks = graph.SelectByGammaGap();
  EXPECT_EQ(peaks, (std::vector<PointId>{0, 1}));
}

TEST(DecisionGraphTest, GammaGapSinglePointDataset) {
  DpScores scores;
  scores.Resize(1);
  scores.rho = {1};
  scores.delta = {kInf};
  DecisionGraph graph = DecisionGraph::FromScores(scores);
  EXPECT_EQ(graph.SelectByGammaGap().size(), 1u);
}

TEST(DecisionGraphTest, TsvHasHeaderAndAllRows) {
  DpScores scores;
  scores.Resize(2);
  scores.rho = {1, 2};
  scores.delta = {0.5, kInf};
  std::string tsv = DecisionGraph::FromScores(scores).ToTsv();
  EXPECT_EQ(static_cast<size_t>(
                std::count(tsv.begin(), tsv.end(), '\n')),
            3u);  // header + 2 rows
  EXPECT_NE(tsv.find("id\trho\tdelta\tgamma"), std::string::npos);
}

// ------------------------------------------------------------- Assignment

TEST(AssignmentTest, FollowsUpslopeChains) {
  Dataset ds = TwoGroups();
  CountingMetric metric;
  auto scores = ComputeExactDp(ds, 1.5, metric);
  ASSERT_TRUE(scores.ok());
  // Peaks: the absolute peak (1) and point 3 (center of second group).
  std::vector<PointId> peaks = {1, 3};
  auto result = AssignClusters(ds, *scores, peaks, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment[0], 0);
  EXPECT_EQ(result->assignment[1], 0);
  EXPECT_EQ(result->assignment[2], 0);
  EXPECT_EQ(result->assignment[3], 1);
  EXPECT_EQ(result->assignment[4], 1);
}

TEST(AssignmentTest, ChainThroughIntermediatePoints) {
  // A monotone density ridge: 4 points where each upslopes to the previous.
  DpScores scores;
  scores.Resize(4);
  scores.rho = {10, 8, 6, 4};
  scores.delta = {kInf, 1.0, 1.0, 1.0};
  scores.upslope = {kInvalidPointId, 0, 1, 2};
  Dataset ds(1);
  for (double x : {0.0, 1.0, 2.0, 3.0}) ds.Add(std::vector<double>{x});
  CountingMetric metric;
  auto result = AssignClusters(ds, scores, std::vector<PointId>{0}, metric);
  ASSERT_TRUE(result.ok());
  for (int c : result->assignment) EXPECT_EQ(c, 0);
}

TEST(AssignmentTest, OrphanFallsBackToNearestPeak) {
  // Point 2 has no upslope (an unselected LSH local peak) and is closer to
  // peak 3 than to peak 0.
  Dataset ds(1);
  for (double x : {0.0, 1.0, 50.0, 60.0}) ds.Add(std::vector<double>{x});
  DpScores scores;
  scores.Resize(4);
  scores.rho = {10, 5, 4, 8};
  scores.delta = {kInf, 1.0, kInf, 2.0};
  scores.upslope = {kInvalidPointId, 0, kInvalidPointId, 0};
  CountingMetric metric;
  auto result = AssignClusters(ds, scores, std::vector<PointId>{0, 3}, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment[2], 1);  // nearest peak is 3 (cluster 1)
}

TEST(AssignmentTest, Validation) {
  Dataset ds = TwoGroups();
  CountingMetric metric;
  auto scores = ComputeExactDp(ds, 1.5, metric);
  ASSERT_TRUE(scores.ok());
  EXPECT_TRUE(AssignClusters(ds, *scores, std::vector<PointId>{}, metric)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AssignClusters(ds, *scores, std::vector<PointId>{99}, metric)
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(AssignClusters(ds, *scores, std::vector<PointId>{1, 1}, metric)
                  .status()
                  .IsInvalidArgument());
}

TEST(AssignmentTest, EveryPointAssignedWithValidPeaks) {
  auto ds = gen::GaussianMixture(300, 2, 3, 60.0, 2.0, 61);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto scores = ComputeExactDp(*ds, 3.0, metric);
  ASSERT_TRUE(scores.ok());
  DecisionGraph graph = DecisionGraph::FromScores(*scores);
  auto peaks = graph.SelectTopK(3);
  auto result = AssignClusters(*ds, *scores, peaks, metric);
  ASSERT_TRUE(result.ok());
  for (int c : result->assignment) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 3);
  }
}

}  // namespace
}  // namespace ddp

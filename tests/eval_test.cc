#include <gtest/gtest.h>

#include <vector>

#include "eval/contingency.h"
#include "eval/metrics.h"
#include "eval/tau.h"

namespace ddp {
namespace eval {
namespace {

// ----------------------------------------------------------- Contingency

TEST(ContingencyTest, BuildsCorrectCells) {
  std::vector<int> pred = {0, 0, 1, 1};
  std::vector<int> truth = {0, 1, 1, 1};
  auto table = ContingencyTable::Build(pred, truth);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->n(), 4u);
  EXPECT_EQ(table->num_predicted(), 2u);
  EXPECT_EQ(table->num_truth(), 2u);
  EXPECT_EQ(table->cell(0, 0), 1u);
  EXPECT_EQ(table->cell(0, 1), 1u);
  EXPECT_EQ(table->cell(1, 1), 2u);
  EXPECT_EQ(table->row_sums()[0], 2u);
  EXPECT_EQ(table->col_sums()[1], 3u);
}

TEST(ContingencyTest, NegativeLabelsBecomeSingletons) {
  std::vector<int> pred = {-1, -1, 0};
  std::vector<int> truth = {0, 0, 0};
  auto table = ContingencyTable::Build(pred, truth);
  ASSERT_TRUE(table.ok());
  // Two noise points each get their own cluster + one real cluster.
  EXPECT_EQ(table->num_predicted(), 3u);
}

TEST(ContingencyTest, NonContiguousLabelsAreDensified) {
  std::vector<int> pred = {100, 7, 100};
  std::vector<int> truth = {5, 5, 5};
  auto table = ContingencyTable::Build(pred, truth);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_predicted(), 2u);
  EXPECT_EQ(table->num_truth(), 1u);
}

TEST(ContingencyTest, Validation) {
  std::vector<int> a = {0, 1};
  std::vector<int> b = {0};
  EXPECT_FALSE(ContingencyTable::Build(a, b).ok());
  std::vector<int> empty;
  EXPECT_FALSE(ContingencyTable::Build(empty, empty).ok());
}

// ------------------------------------------------------------------- ARI

TEST(AriTest, IdenticalPartitionsScoreOne) {
  std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  auto ari = AdjustedRandIndex(labels, labels);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(AriTest, RelabeledPartitionStillScoresOne) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  std::vector<int> b = {5, 5, 3, 3, 9, 9};
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(AriTest, KnownSklearnValue) {
  // sklearn.metrics.adjusted_rand_score([0,0,1,1],[0,0,1,2]) == 0.5714285...
  std::vector<int> a = {0, 0, 1, 1};
  std::vector<int> b = {0, 0, 1, 2};
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 0.5714285714285714, 1e-12);
}

TEST(AriTest, IndependentPartitionNearZero) {
  // Alternating vs. block labels on a large set: expected ~0.
  std::vector<int> a, b;
  for (int i = 0; i < 400; ++i) {
    a.push_back(i % 2);
    b.push_back(i < 200 ? 0 : 1);
  }
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 0.0, 0.02);
}

TEST(AriTest, RangeBound) {
  std::vector<int> a = {0, 1, 0, 1};
  std::vector<int> b = {1, 0, 1, 0};
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_GE(*ari, -1.0);
  EXPECT_LE(*ari, 1.0);
  EXPECT_DOUBLE_EQ(*ari, 1.0);  // same partition under relabeling
}

// ------------------------------------------------------------------- NMI

TEST(NmiTest, IdenticalPartitionsScoreOne) {
  std::vector<int> labels = {0, 1, 1, 2, 2, 2};
  auto nmi = NormalizedMutualInformation(labels, labels);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsScoreNearZero) {
  std::vector<int> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(i % 2);
    b.push_back((i / 2) % 2);
  }
  auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 0.0, 0.01);
}

TEST(NmiTest, SingleClusterVsAnythingIsOneByConvention) {
  std::vector<int> one = {0, 0, 0, 0};
  auto nmi = NormalizedMutualInformation(one, one);
  ASSERT_TRUE(nmi.ok());
  EXPECT_DOUBLE_EQ(*nmi, 1.0);
}

TEST(NmiTest, InUnitInterval) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  std::vector<int> b = {0, 1, 1, 2, 2, 0};
  auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_GE(*nmi, 0.0);
  EXPECT_LE(*nmi, 1.0);
}

// ----------------------------------------------------------------- Purity

TEST(PurityTest, PerfectClusteringScoresOne) {
  std::vector<int> labels = {0, 0, 1, 1};
  auto purity = Purity(labels, labels);
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 1.0);
}

TEST(PurityTest, KnownMixedValue) {
  // Cluster 0: truths {0,0,1} -> 2 correct; cluster 1: truths {1,1,0} -> 2.
  std::vector<int> pred = {0, 0, 0, 1, 1, 1};
  std::vector<int> truth = {0, 0, 1, 1, 1, 0};
  auto purity = Purity(pred, truth);
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 4.0 / 6.0);
}

TEST(PurityTest, AllSingletonsTriviallyPure) {
  std::vector<int> pred = {0, 1, 2, 3};
  std::vector<int> truth = {0, 0, 1, 1};
  auto purity = Purity(pred, truth);
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 1.0);
}

// -------------------------------------------------------------- RandIndex

TEST(RandIndexTest, IdenticalIsOne) {
  std::vector<int> labels = {0, 0, 1, 1};
  auto ri = RandIndex(labels, labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 1.0);
}

TEST(RandIndexTest, KnownValue) {
  // Pairs: n=4 -> 6 pairs. pred {0,0,1,1} vs truth {0,1,0,1}:
  // agreements: pairs split in both = 4; a = 0, b = 4 - wait compute:
  // same-pred pairs: (0,1),(2,3); same-truth: (0,2),(1,3). a = |both same|=0.
  // both different: (0,3),(1,2) -> b=2. RI = (0+2)/6 = 1/3.
  std::vector<int> pred = {0, 0, 1, 1};
  std::vector<int> truth = {0, 1, 0, 1};
  auto ri = RandIndex(pred, truth);
  ASSERT_TRUE(ri.ok());
  EXPECT_NEAR(*ri, 1.0 / 3.0, 1e-12);
}

// ------------------------------------------------------------- PairwiseF1

TEST(PairwiseF1Test, PerfectClusteringScoresOne) {
  std::vector<int> labels = {0, 0, 1, 1, 2};
  auto scores = PairwiseF1(labels, labels);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->precision, 1.0);
  EXPECT_DOUBLE_EQ(scores->recall, 1.0);
  EXPECT_DOUBLE_EQ(scores->f1, 1.0);
}

TEST(PairwiseF1Test, OverMergingHurtsPrecisionNotRecall) {
  std::vector<int> pred(6, 0);             // everything in one cluster
  std::vector<int> truth = {0, 0, 0, 1, 1, 1};
  auto scores = PairwiseF1(pred, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->recall, 1.0);   // all truth pairs captured
  // 15 predicted pairs, 6 correct.
  EXPECT_DOUBLE_EQ(scores->precision, 6.0 / 15.0);
}

TEST(PairwiseF1Test, OverSplittingHurtsRecallNotPrecision) {
  std::vector<int> pred = {0, 1, 2, 3};    // all singletons
  std::vector<int> truth = {0, 0, 1, 1};
  auto scores = PairwiseF1(pred, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->precision, 1.0);  // vacuous: no predicted pairs
  EXPECT_DOUBLE_EQ(scores->recall, 0.0);
  EXPECT_DOUBLE_EQ(scores->f1, 0.0);
}

TEST(PairwiseF1Test, KnownMixedValue) {
  std::vector<int> pred = {0, 0, 1, 1};
  std::vector<int> truth = {0, 0, 0, 1};
  // Predicted pairs: (0,1),(2,3) -> tp = (0,1) only. precision 1/2.
  // Truth pairs: (0,1),(0,2),(1,2) -> recall 1/3.
  auto scores = PairwiseF1(pred, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->precision, 0.5);
  EXPECT_NEAR(scores->recall, 1.0 / 3.0, 1e-12);
}

// ------------------------------------------------------------------ Taus

TEST(TauTest, PerfectApproximationScoresOne) {
  std::vector<uint32_t> rho = {1, 5, 9, 0};
  EXPECT_DOUBLE_EQ(*Tau1(rho, rho), 1.0);
  EXPECT_DOUBLE_EQ(*Tau2(rho, rho), 1.0);
}

TEST(TauTest, Tau1CountsExactMatches) {
  std::vector<uint32_t> approx = {1, 4, 9, 0};
  std::vector<uint32_t> exact = {1, 5, 9, 0};
  EXPECT_DOUBLE_EQ(*Tau1(approx, exact), 0.75);
}

TEST(TauTest, Tau2PenalizesRelativeError) {
  std::vector<uint32_t> approx = {5, 10};
  std::vector<uint32_t> exact = {10, 10};
  // Errors: 0.5 and 0 -> tau2 = 1 - 0.25 = 0.75.
  EXPECT_DOUBLE_EQ(*Tau2(approx, exact), 0.75);
}

TEST(TauTest, Tau2ZeroExactHandling) {
  std::vector<uint32_t> approx = {0, 3};
  std::vector<uint32_t> exact = {0, 0};
  // First point exact (error 0), second counts as full error 1.
  EXPECT_DOUBLE_EQ(*Tau2(approx, exact), 0.5);
}

TEST(TauTest, UnderestimatesBoundTau2FromBelow) {
  // LSH-DDP underestimates: error per point < 1, so tau2 > 0.
  std::vector<uint32_t> approx = {4, 9, 0};
  std::vector<uint32_t> exact = {5, 10, 2};
  auto tau2 = Tau2(approx, exact);
  ASSERT_TRUE(tau2.ok());
  EXPECT_GT(*tau2, 0.0);
  EXPECT_LT(*tau2, 1.0);
}

TEST(TauTest, Validation) {
  std::vector<uint32_t> a = {1, 2};
  std::vector<uint32_t> b = {1};
  EXPECT_FALSE(Tau1(a, b).ok());
  EXPECT_FALSE(Tau2(a, b).ok());
  std::vector<uint32_t> empty;
  EXPECT_FALSE(Tau1(empty, empty).ok());
}

}  // namespace
}  // namespace eval
}  // namespace ddp

// Multi-process execution suite: the framed channel wire format (loopback,
// socketpair, and TCP), the shared seeded backoff, the supervisor wire
// payloads (task/result and the streamed-shuffle run frames), the run
// trailer integrity gate, the orphan spill-file reaper, and — the contract
// everything else serves — bit-identity of --exec-mode=fork with the
// in-process executor on both transports, including under chaos schedules
// that SIGKILL workers mid-map and mid-shuffle, drop TCP connections
// mid-run, hang workers past the task deadline, and poison tasks until
// they are quarantined.
//
// Fork-mode tests skip themselves where forked workers are unsupported
// (ForkExecutionSupported() == false, e.g. under TSan); the protocol,
// backoff, and reaper tests run everywhere.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "mapreduce/channel.h"
#include "mapreduce/counters.h"
#include "mapreduce/mapreduce.h"
#include "mapreduce/spill.h"
#include "mapreduce/supervisor.h"

namespace ddp {
namespace mr {
namespace {

// ---------------------------------------------------------------- channel

TEST(ChannelTest, LoopbackRoundTripsEveryMessageType) {
  auto [a, b] = LoopbackChannel::MakePair();
  const std::string big(100 * 1024, '\x5a');
  const Frame frames[] = {
      {MessageType::kHello, ""},
      {MessageType::kTask, std::string("\x00\x01\xff binary", 9)},
      {MessageType::kResult, big},
      {MessageType::kHeartbeat, "beat"},
      {MessageType::kShutdown, ""},
  };
  for (const Frame& f : frames) {
    ASSERT_TRUE(a->Send(f).ok());
    Frame got;
    ASSERT_TRUE(b->Recv(&got, 1.0).ok());
    EXPECT_EQ(got.type, f.type);
    EXPECT_EQ(got.payload, f.payload);
  }
}

TEST(ChannelTest, RecvTimesOutAndCloseYieldsIoError) {
  auto [a, b] = LoopbackChannel::MakePair();
  Frame got;
  EXPECT_TRUE(b->Recv(&got, 0.05).IsDeadlineExceeded());
  a->Close();
  EXPECT_TRUE(b->Recv(&got, 0.05).IsIoError());
}

TEST(ChannelTest, CorruptedFrameIsIoError) {
  Frame f{MessageType::kResult, "payload bytes that the crc protects"};
  std::string wire = EncodeFrame(f);

  // Flip one payload byte: the CRC32 trailer no longer matches.
  std::string flipped = wire;
  flipped[wire.size() / 2] ^= 0x01;
  auto [a, b] = LoopbackChannel::MakePair();
  b->InjectRaw(flipped);
  Frame got;
  EXPECT_TRUE(b->Recv(&got, 0.1).IsIoError());

  // Truncated frame: the payload ends before the declared length.
  b->InjectRaw(wire.substr(0, wire.size() - 6));
  EXPECT_TRUE(b->Recv(&got, 0.1).IsIoError());

  // An intact frame still decodes (corruption does not poison the channel
  // abstraction itself, only the one frame).
  b->InjectRaw(wire);
  ASSERT_TRUE(b->Recv(&got, 0.1).ok());
  EXPECT_EQ(got.payload, f.payload);
}

TEST(ChannelTest, DecodeFrameRoundTrip) {
  Frame f{MessageType::kTask, std::string(1, '\0') + "after-nul"};
  Frame got;
  ASSERT_TRUE(DecodeFrame(EncodeFrame(f), &got).ok());
  EXPECT_EQ(got.type, f.type);
  EXPECT_EQ(got.payload, f.payload);
}

TEST(ChannelTest, PipeChannelRoundTripsBothDirections) {
  auto pair = PipeChannel::CreatePair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  auto [parent, child] = std::move(*pair);

  ASSERT_TRUE(parent->Send({MessageType::kTask, "down"}).ok());
  Frame got;
  ASSERT_TRUE(child->Recv(&got, 2.0).ok());
  EXPECT_EQ(got.type, MessageType::kTask);
  EXPECT_EQ(got.payload, "down");

  ASSERT_TRUE(child->Send({MessageType::kResult, "up"}).ok());
  ASSERT_TRUE(parent->Recv(&got, 2.0).ok());
  EXPECT_EQ(got.type, MessageType::kResult);
  EXPECT_EQ(got.payload, "up");

  // Peer close reads as IoError (EOF), the supervisor's crash signal.
  child->Close();
  EXPECT_TRUE(parent->Recv(&got, 2.0).IsIoError());
}

TEST(ChannelTest, TcpConnectAcceptRoundTripAndReconnect) {
  auto listener = TcpListener::Listen("127.0.0.1", 0);
  if (!listener.ok() && listener.status().IsNotImplemented()) {
    GTEST_SKIP() << "TCP transport unsupported on this platform";
  }
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  TcpListener& lst = **listener;
  ASSERT_NE(lst.port(), 0);  // ephemeral port was resolved
  const ExponentialBackoff::Params bo{0.001, 2.0, 0.05, 0.0};

  auto client = TcpChannel::Connect("127.0.0.1", lst.port(), bo, 7, 5.0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto server = lst.Accept(5.0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  ASSERT_TRUE((*client)->Send({MessageType::kHello, "hi"}).ok());
  Frame got;
  ASSERT_TRUE((*server)->Recv(&got, 5.0).ok());
  EXPECT_EQ(got.type, MessageType::kHello);
  EXPECT_EQ(got.payload, "hi");
  ASSERT_TRUE((*server)->Send({MessageType::kTask, "t"}).ok());
  ASSERT_TRUE((*client)->Recv(&got, 5.0).ok());
  EXPECT_EQ(got.payload, "t");

  // Drop: the client goes away, the server end reads IoError, and a fresh
  // connection to the same listener restores the framed protocol — the
  // lifecycle a reconnecting worker exercises.
  (*client)->Close();
  EXPECT_TRUE((*server)->Recv(&got, 5.0).IsIoError());
  auto again = TcpChannel::Connect("127.0.0.1", lst.port(), bo, 8, 5.0);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  auto server2 = lst.Accept(5.0);
  ASSERT_TRUE(server2.ok()) << server2.status().ToString();
  ASSERT_TRUE((*again)->Send({MessageType::kHello, "back"}).ok());
  ASSERT_TRUE((*server2)->Recv(&got, 5.0).ok());
  EXPECT_EQ(got.payload, "back");
}

TEST(ChannelTest, TcpConnectGivesUpAtTheDeadline) {
  auto listener = TcpListener::Listen("127.0.0.1", 0);
  if (!listener.ok() && listener.status().IsNotImplemented()) {
    GTEST_SKIP() << "TCP transport unsupported on this platform";
  }
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const uint16_t dead_port = (*listener)->port();
  (*listener)->Close();  // nothing listens here any more
  const ExponentialBackoff::Params bo{0.001, 2.0, 0.01, 0.0};
  auto c = TcpChannel::Connect("127.0.0.1", dead_port, bo, 3, 0.2);
  EXPECT_FALSE(c.ok());
}

// ---------------------------------------------------------------- backoff

TEST(BackoffTest, ScheduleIsDeterministicPerSeed) {
  ExponentialBackoff::Params p{0.01, 2.0, 0.5, 0.25};
  ExponentialBackoff a(p, 42), b(p, 42), c(p, 43);
  bool seed_changes_something = false;
  for (uint64_t attempt = 0; attempt < 12; ++attempt) {
    EXPECT_EQ(a.DelaySeconds(attempt), b.DelaySeconds(attempt));
    if (a.DelaySeconds(attempt) != c.DelaySeconds(attempt)) {
      seed_changes_something = true;
    }
  }
  EXPECT_TRUE(seed_changes_something);
}

TEST(BackoffTest, DelaysGrowAndRespectCapAndJitterWindow) {
  ExponentialBackoff::Params p{0.01, 2.0, 0.5, 0.25};
  ExponentialBackoff bo(p, 7);
  for (uint64_t attempt = 0; attempt < 16; ++attempt) {
    double ideal = p.base_seconds;
    for (uint64_t i = 0; i < attempt; ++i) ideal *= p.multiplier;
    if (ideal > p.max_seconds) ideal = p.max_seconds;
    double d = bo.DelaySeconds(attempt);
    EXPECT_GE(d, ideal * (1.0 - p.jitter)) << "attempt " << attempt;
    EXPECT_LE(d, ideal) << "attempt " << attempt;
  }
}

TEST(BackoffTest, ZeroJitterIsExactExponential) {
  ExponentialBackoff::Params p{0.02, 3.0, 1.0, 0.0};
  ExponentialBackoff bo(p, 1);
  EXPECT_DOUBLE_EQ(bo.DelaySeconds(0), 0.02);
  EXPECT_DOUBLE_EQ(bo.DelaySeconds(1), 0.06);
  EXPECT_DOUBLE_EQ(bo.DelaySeconds(2), 0.18);
  EXPECT_DOUBLE_EQ(bo.DelaySeconds(10), 1.0);  // capped
}

// ------------------------------------------------------- wire payloads

TEST(SupervisorCodecTest, TaskMsgRoundTrip) {
  TaskMsg in;
  in.task = 123456789;
  in.attempt = 7;
  in.quarantined = true;
  TaskMsg out;
  ASSERT_TRUE(TaskMsg::Decode(in.Encode(), &out).ok());
  EXPECT_EQ(out.task, in.task);
  EXPECT_EQ(out.attempt, in.attempt);
  EXPECT_EQ(out.quarantined, in.quarantined);
}

TEST(SupervisorCodecTest, ResultMsgRoundTrip) {
  ResultMsg in;
  in.task = 42;
  in.attempt = 3;
  in.status_code = static_cast<int32_t>(StatusCode::kIoError);
  in.status_message = "simulated";
  in.seconds = 0.125;
  in.payload = std::string("\x00\xff\x7f", 3);
  ResultMsg out;
  ASSERT_TRUE(ResultMsg::Decode(in.Encode(), &out).ok());
  EXPECT_EQ(out.task, in.task);
  EXPECT_EQ(out.attempt, in.attempt);
  EXPECT_EQ(out.status_code, in.status_code);
  EXPECT_EQ(out.status_message, in.status_message);
  EXPECT_EQ(out.seconds, in.seconds);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(SupervisorCodecTest, StreamedShuffleMsgsRoundTrip) {
  HelloMsg h;
  h.worker_id = 5;
  h.generation = 3;
  HelloMsg h2;
  ASSERT_TRUE(HelloMsg::Decode(h.Encode(), &h2).ok());
  EXPECT_EQ(h2.worker_id, h.worker_id);
  EXPECT_EQ(h2.generation, h.generation);

  RunBeginMsg b;
  b.task = 9;
  b.attempt = 2;
  b.seq = 4;
  b.partition = 3;
  b.spill_index = kTailRunIndex;  // the sentinel must survive the varint
  b.length = 123456789;
  RunBeginMsg b2;
  ASSERT_TRUE(RunBeginMsg::Decode(b.Encode(), &b2).ok());
  EXPECT_EQ(b2.task, b.task);
  EXPECT_EQ(b2.attempt, b.attempt);
  EXPECT_EQ(b2.seq, b.seq);
  EXPECT_EQ(b2.partition, b.partition);
  EXPECT_EQ(b2.spill_index, b.spill_index);
  EXPECT_EQ(b2.length, b.length);

  RunEndMsg e;
  e.task = 9;
  e.attempt = 2;
  e.seq = 4;
  RunEndMsg e2;
  ASSERT_TRUE(RunEndMsg::Decode(e.Encode(), &e2).ok());
  EXPECT_EQ(e2.task, e.task);
  EXPECT_EQ(e2.attempt, e.attempt);
  EXPECT_EQ(e2.seq, e.seq);

  RunAckMsg a;
  a.task = RunAckMsg::kNoTask;  // the no-attempt resume sentinel
  a.attempt = 1;
  a.acked_runs = 7;
  a.acked_bytes = uint64_t{1} << 33;
  RunAckMsg a2;
  ASSERT_TRUE(RunAckMsg::Decode(a.Encode(), &a2).ok());
  EXPECT_EQ(a2.task, RunAckMsg::kNoTask);
  EXPECT_EQ(a2.attempt, a.attempt);
  EXPECT_EQ(a2.acked_runs, a.acked_runs);
  EXPECT_EQ(a2.acked_bytes, a.acked_bytes);
}

TEST(SupervisorCodecTest, DecodeRejectsGarbage) {
  TaskMsg t;
  EXPECT_FALSE(TaskMsg::Decode("\xff", &t).ok());
  ResultMsg r;
  EXPECT_FALSE(ResultMsg::Decode("", &r).ok());
  HelloMsg h;
  EXPECT_FALSE(HelloMsg::Decode("\xff", &h).ok());
  RunBeginMsg b;
  EXPECT_FALSE(RunBeginMsg::Decode("", &b).ok());
  RunEndMsg e;
  EXPECT_FALSE(RunEndMsg::Decode("\x01", &e).ok());
  RunAckMsg a;
  EXPECT_FALSE(RunAckMsg::Decode("\x01", &a).ok());
}

// ------------------------------------------------------- run trailer gate

TEST(RunTrailerTest, AppendVerifyStripRoundTripAndCorruption) {
  const std::string original = "frame bytes standing in for sorted records";
  std::string segment = original;
  AppendRunTrailer(&segment);
  ASSERT_EQ(segment.size(), original.size() + 4);

  // The happy path: a shipped run verifies and strips back to its frames.
  std::string shipped = segment;
  ASSERT_TRUE(VerifyAndStripRunTrailer(&shipped).ok());
  EXPECT_EQ(shipped, original);

  // One flipped payload bit is caught by the trailer.
  std::string flipped = segment;
  flipped[flipped.size() / 2] ^= 0x01;
  EXPECT_TRUE(VerifyAndStripRunTrailer(&flipped).IsIoError());

  // A truncated segment no longer matches its (shifted) trailer.
  std::string truncated = segment.substr(0, segment.size() - 1);
  EXPECT_TRUE(VerifyAndStripRunTrailer(&truncated).IsIoError());

  // Shorter than the trailer itself: rejected outright.
  std::string tiny = "abc";
  EXPECT_TRUE(VerifyAndStripRunTrailer(&tiny).IsIoError());
}

// ----------------------------------------------------------- spill reaper

TEST(SpillReaperTest, ReapsDeadOwnersKeepsLiveUntaggedAndForeign) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "ddp_mp_reaper_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto touch = [&](const std::string& name) {
    std::ofstream(dir / name) << "x";
  };
  // Pid 999999999 exceeds every Linux pid_max; its owner is dead by
  // construction. The second tag wins (adopted-file naming appends).
  touch("run-p999999999-u0-s0.spill");
  touch("run-p999999999-u1-s0-p999999998-a1.spill");
  touch("mine-" + internal::SpillOwnerTag() + "-u2-s0.spill");  // our own: kept
  touch("untagged.spill");                            // no owner tag: kept
  touch("not_a_spill.txt");                           // wrong suffix: kept

  EXPECT_EQ(ReapOrphanSpillFiles(dir.string()), 2u);
  EXPECT_FALSE(fs::exists(dir / "run-p999999999-u0-s0.spill"));
  EXPECT_FALSE(fs::exists(dir / "run-p999999999-u1-s0-p999999998-a1.spill"));
  EXPECT_TRUE(fs::exists(dir / ("mine-" + internal::SpillOwnerTag() + "-u2-s0.spill")));
  EXPECT_TRUE(fs::exists(dir / "untagged.spill"));
  EXPECT_TRUE(fs::exists(dir / "not_a_spill.txt"));

  // Second sweep finds nothing; missing directory is a no-op.
  EXPECT_EQ(ReapOrphanSpillFiles(dir.string()), 0u);
  fs::remove_all(dir);
  EXPECT_EQ(ReapOrphanSpillFiles(dir.string()), 0u);
}

// --------------------------------------------------- supervisor end-to-end

TEST(SupervisorTest, RunsEveryTaskAndCommitsByTaskId) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  SupervisorConfig config;
  config.job_name = "unit";
  config.num_workers = 3;
  config.num_tasks = 17;
  WorkerTaskFn fn = [](size_t task, size_t, bool, TaskResult* result) {
    result->payload = "task-" + std::to_string(task);
    return Status::OK();
  };
  std::vector<std::string> committed(config.num_tasks);
  CommitFn commit = [&committed](size_t task, bool, double, std::string payload,
                                 std::vector<CommittedRun>) {
    committed[task] = std::move(payload);
    return Status::OK();
  };
  SupervisorStats stats;
  ASSERT_TRUE(WorkerSupervisor::RunPhase(config, fn, commit, &stats).ok());
  for (size_t t = 0; t < committed.size(); ++t) {
    EXPECT_EQ(committed[t], "task-" + std::to_string(t));
  }
  EXPECT_EQ(stats.worker_crashes, 0u);
  EXPECT_EQ(stats.durations.size(), committed.size());
}

TEST(SupervisorTest, FirstAttemptCrashIsRetriedOnAFreshWorker) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  SupervisorConfig config;
  config.job_name = "crash-once";
  config.num_workers = 2;
  config.num_tasks = 6;
  // Task 2's first attempt SIGKILLs its worker; every retry succeeds. This
  // runs in the child, so the "state" is per-attempt by construction.
  WorkerTaskFn fn = [](size_t task, size_t attempt, bool, TaskResult* result) {
    if (task == 2 && attempt == 0) CrashSelf();
    result->payload = std::to_string(task);
    return Status::OK();
  };
  size_t committed = 0;
  CommitFn commit = [&committed](size_t, bool, double, std::string,
                                 std::vector<CommittedRun>) {
    ++committed;
    return Status::OK();
  };
  SupervisorStats stats;
  ASSERT_TRUE(WorkerSupervisor::RunPhase(config, fn, commit, &stats).ok());
  EXPECT_EQ(committed, config.num_tasks);
  EXPECT_EQ(stats.worker_crashes, 1u);
  EXPECT_GE(stats.worker_restarts, 1u);
  EXPECT_GE(stats.retries, 1u);
}

// Streams two in-memory tail runs per attempt through the supervisor and
// checks they come back committed in stream order, trailers verified and
// stripped, bytes intact — on both transports with the same task body.
void RunTailStreamingPhase(Transport transport) {
  SupervisorConfig config;
  config.job_name = "stream";
  config.num_workers = 2;
  config.num_tasks = 9;
  config.transport = transport;
  config.stream_window_bytes = 64;  // tiny window: acks must flow to finish
  WorkerTaskFn fn = [](size_t task, size_t, bool, TaskResult* result) {
    result->payload = "p" + std::to_string(task);
    OutboundRun a;
    a.partition = 0;
    a.spill_index = 0;
    a.bytes = "run-a-for-task-" + std::to_string(task);
    result->runs.push_back(std::move(a));
    OutboundRun b;
    b.partition = 1;
    b.spill_index = kTailRunIndex;
    b.bytes = std::string(300, 'x') + std::to_string(task);  // > window
    result->runs.push_back(std::move(b));
    return Status::OK();
  };
  std::vector<std::vector<CommittedRun>> got(config.num_tasks);
  std::vector<std::string> payloads(config.num_tasks);
  CommitFn commit = [&](size_t task, bool, double, std::string payload,
                        std::vector<CommittedRun> runs) {
    payloads[task] = std::move(payload);
    got[task] = std::move(runs);
    return Status::OK();
  };
  SupervisorStats stats;
  ASSERT_TRUE(WorkerSupervisor::RunPhase(config, fn, commit, &stats).ok());
  for (size_t t = 0; t < got.size(); ++t) {
    EXPECT_EQ(payloads[t], "p" + std::to_string(t));
    ASSERT_EQ(got[t].size(), 2u) << "task " << t;
    // Run a (a real spill index) is disk-backed on arrival: the supervisor
    // appended it to a spill file it owns and wrote a fresh trailer.
    EXPECT_EQ(got[t][0].partition, 0u);
    EXPECT_EQ(got[t][0].spill_index, 0u);
    EXPECT_TRUE(got[t][0].bytes.empty());
    ASSERT_NE(got[t][0].file, nullptr);
    const std::string want_a = "run-a-for-task-" + std::to_string(t);
    ASSERT_EQ(got[t][0].length, want_a.size() + 4);  // + CRC trailer
    std::ifstream in(got[t][0].file->path(), std::ios::binary);
    ASSERT_TRUE(in.good());
    in.seekg(static_cast<std::streamoff>(got[t][0].offset));
    std::string stored(got[t][0].length, '\0');
    in.read(stored.data(), static_cast<std::streamsize>(stored.size()));
    ASSERT_TRUE(in.good());
    ASSERT_TRUE(VerifyAndStripRunTrailer(&stored).ok());
    EXPECT_EQ(stored, want_a);
    // The tail stays in memory, trailer verified and stripped.
    EXPECT_EQ(got[t][1].partition, 1u);
    EXPECT_EQ(got[t][1].spill_index, kTailRunIndex);
    EXPECT_EQ(got[t][1].file, nullptr);
    EXPECT_EQ(got[t][1].bytes, std::string(300, 'x') + std::to_string(t));
  }
  // Streamed accounting counts wire bytes (trailers included), so it must
  // exceed the sum of the raw tail bytes.
  EXPECT_GT(stats.shuffle_streamed_bytes, config.num_tasks * 300u);
}

TEST(SupervisorTest, StreamsTailRunsOverPipe) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  RunTailStreamingPhase(Transport::kPipe);
}

TEST(SupervisorTest, StreamsTailRunsOverTcp) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  RunTailStreamingPhase(Transport::kTcp);
}

// Credit-window edge: one run whose bytes alone exceed stream_window_bytes
// many times over. The worker cannot hold a full window of credit for it up
// front, so progress depends on the ack flow refilling the window
// mid-run — a deadlock here would hang the phase, not fail it. The run must
// land complete and intact on both transports.
void RunOversizedSingleRunPhase(Transport transport) {
  SupervisorConfig config;
  config.job_name = "stream_oversized";
  config.num_workers = 2;
  config.num_tasks = 4;
  config.transport = transport;
  config.stream_window_bytes = 256;  // run below is 32x the window
  const size_t run_bytes = 8192;
  WorkerTaskFn fn = [run_bytes](size_t task, size_t, bool,
                                TaskResult* result) {
    OutboundRun run;
    run.partition = 0;
    run.spill_index = kTailRunIndex;
    run.bytes = std::string(run_bytes, static_cast<char>('a' + task));
    result->runs.push_back(std::move(run));
    result->payload = std::to_string(task);
    return Status::OK();
  };
  std::vector<std::vector<CommittedRun>> got(config.num_tasks);
  CommitFn commit = [&](size_t task, bool, double, std::string,
                        std::vector<CommittedRun> runs) {
    got[task] = std::move(runs);
    return Status::OK();
  };
  SupervisorStats stats;
  ASSERT_TRUE(WorkerSupervisor::RunPhase(config, fn, commit, &stats).ok());
  for (size_t t = 0; t < got.size(); ++t) {
    ASSERT_EQ(got[t].size(), 1u) << "task " << t;
    EXPECT_EQ(got[t][0].bytes,
              std::string(run_bytes, static_cast<char>('a' + t)));
  }
  EXPECT_GT(stats.shuffle_streamed_bytes, config.num_tasks * run_bytes);
}

TEST(SupervisorTest, SingleRunExceedingWindowStreamsOverPipe) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  RunOversizedSingleRunPhase(Transport::kPipe);
}

TEST(SupervisorTest, SingleRunExceedingWindowStreamsOverTcp) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  RunOversizedSingleRunPhase(Transport::kTcp);
}

// ----------------------------------------------- fork-mode bit identity

JobSpec<std::string, std::string, uint32_t, std::pair<std::string, uint32_t>>
WordCountSpec() {
  JobSpec<std::string, std::string, uint32_t, std::pair<std::string, uint32_t>>
      spec;
  spec.name = "mp-wordcount";
  spec.map = [](const std::string& doc, Emitter<std::string, uint32_t>* out) {
    size_t pos = 0;
    while (pos < doc.size()) {
      size_t end = doc.find(' ', pos);
      if (end == std::string::npos) end = doc.size();
      if (end > pos) out->Emit(doc.substr(pos, end - pos), 1);
      pos = end + 1;
    }
  };
  spec.reduce = [](const std::string& word, std::span<const uint32_t> counts,
                   std::vector<std::pair<std::string, uint32_t>>* out) {
    uint32_t total = 0;
    for (uint32_t c : counts) total += c;
    out->push_back({word, total});
  };
  return spec;
}

std::vector<std::string> Corpus() {
  // Deterministic, word-skewed corpus: enough documents for 8 map tasks and
  // enough distinct keys to populate every reduce partition.
  std::vector<std::string> docs;
  const char* words[] = {"alpha", "beta", "gamma", "delta", "rho", "peak"};
  for (int i = 0; i < 48; ++i) {
    std::string doc;
    for (int j = 0; j <= i % 5; ++j) {
      doc += std::string(words[(i * 7 + j * 3) % 6]) + " ";
    }
    doc += "w" + std::to_string(i % 11);
    docs.push_back(doc);
  }
  return docs;
}

Options MpOptions() {
  Options o;
  o.num_workers = 3;
  o.num_partitions = 5;
  return o;
}

TEST(MultiprocessTest, ForkModeIsBitIdenticalToInProcess) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  JobCounters inproc_counters;
  auto inproc = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       MpOptions(), &inproc_counters);
  ASSERT_TRUE(inproc.ok());

  Options forked = MpOptions();
  forked.exec_mode = ExecMode::kFork;
  JobCounters fork_counters;
  auto fork = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                     forked, &fork_counters);
  ASSERT_TRUE(fork.ok()) << fork.status().ToString();

  EXPECT_EQ(*inproc, *fork);  // exact vector equality: order and bytes
  EXPECT_EQ(fork_counters.exec_fallbacks, 0u);
  EXPECT_EQ(fork_counters.worker_crashes, 0u);
  // The map output reached the reducers as streamed runs, not result
  // payloads: the supervisor-relay data path is gone.
  EXPECT_GT(fork_counters.shuffle_streamed_bytes, 0u);
  EXPECT_EQ(fork_counters.channel_reconnects, 0u);  // pipes never reconnect
  // Shuffle accounting is computed from the same serialized intermediates
  // either way; the substrate must not change what gets shuffled.
  EXPECT_EQ(fork_counters.shuffle_bytes, inproc_counters.shuffle_bytes);
  EXPECT_EQ(fork_counters.shuffle_records, inproc_counters.shuffle_records);
  EXPECT_EQ(fork_counters.map_output_records,
            inproc_counters.map_output_records);
  EXPECT_EQ(fork_counters.reduce_input_groups,
            inproc_counters.reduce_input_groups);
}

TEST(MultiprocessTest, ForkModeUnderSpillBudgetIsBitIdentical) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto inproc = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       MpOptions(), nullptr);
  ASSERT_TRUE(inproc.ok());

  // A tiny budget forces every map task to spill; committed spill files are
  // adopted (renamed under the parent pid) across the process boundary and
  // the reduce workers stream the merge from them.
  Options forked = MpOptions();
  forked.exec_mode = ExecMode::kFork;
  forked.memory_budget_bytes = 64;
  JobCounters counters;
  auto fork = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                     forked, &counters);
  ASSERT_TRUE(fork.ok()) << fork.status().ToString();
  EXPECT_EQ(*inproc, *fork);
  EXPECT_EQ(counters.exec_fallbacks, 0u);
  EXPECT_GT(counters.spill_files, 0u);
  EXPECT_GT(counters.merge_passes, 0u);
  EXPECT_GT(counters.shuffle_streamed_bytes, 0u);
}

TEST(MultiprocessTest, TcpTransportIsBitIdenticalToInProcess) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto inproc = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       MpOptions(), nullptr);
  ASSERT_TRUE(inproc.ok());

  Options tcp = MpOptions();
  tcp.exec_mode = ExecMode::kFork;
  tcp.transport = Transport::kTcp;
  JobCounters counters;
  auto fork = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                     tcp, &counters);
  ASSERT_TRUE(fork.ok()) << fork.status().ToString();
  EXPECT_EQ(*inproc, *fork);
  EXPECT_EQ(counters.exec_fallbacks, 0u);
  EXPECT_EQ(counters.worker_crashes, 0u);
  EXPECT_GT(counters.shuffle_streamed_bytes, 0u);
  EXPECT_EQ(counters.channel_reconnects, 0u);  // no chaos, no drops
}

// Reconnect chaos: TCP connections are dropped mid-run. The worker dials
// back in, identifies itself (kHello generation > 0), gets a resume ack at
// the last committed run boundary, and re-ships the interrupted run — the
// committed byte stream, and therefore the job output, is unchanged.
TEST(MultiprocessTest, TcpDropChaosReconnectsAndStaysBitIdentical) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto clean = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                      MpOptions(), nullptr);
  ASSERT_TRUE(clean.ok());

  Options chaos = MpOptions();
  chaos.exec_mode = ExecMode::kFork;
  chaos.transport = Transport::kTcp;
  chaos.faults.channel_drop_rate = 0.6;
  chaos.faults.seed = 20260808;
  JobCounters counters;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       chaos, &counters);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*clean, *result);
  EXPECT_GT(counters.channel_reconnects, 0u);
  EXPECT_GT(counters.shuffle_resent_runs, 0u);
  EXPECT_EQ(counters.worker_crashes, 0u);  // drops are not deaths
  EXPECT_EQ(counters.exec_fallbacks, 0u);
}

// The full gauntlet over TCP: a tiny memory budget (every run matters, and
// the stream window shrinks to match), workers SIGKILLed mid-map and
// mid-shuffle, and connections dropped mid-run. Output must still match
// the clean in-process run and no spill file — worker- or
// supervisor-owned — may survive the job.
TEST(MultiprocessTest, TcpCrashAndDropChaosWithSpillsStaysIdentical) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto clean = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                      MpOptions(), nullptr);
  ASSERT_TRUE(clean.ok());

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ddp_mp_tcp_chaos_spill";
  fs::remove_all(dir);

  Options chaos = MpOptions();
  chaos.exec_mode = ExecMode::kFork;
  chaos.transport = Transport::kTcp;
  chaos.memory_budget_bytes = 64;
  chaos.spill_dir = dir.string();
  chaos.faults.worker_crash_rate = 0.3;
  chaos.faults.channel_drop_rate = 0.5;
  chaos.faults.seed = 20260808;
  chaos.max_task_attempts = 24;
  chaos.max_worker_restarts = 64;
  chaos.quarantine_after_crashes = 24;
  JobCounters counters;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       chaos, &counters);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*clean, *result);
  EXPECT_GT(counters.worker_crashes, 0u);
  EXPECT_GT(counters.channel_reconnects, 0u);
  EXPECT_GT(counters.shuffle_streamed_bytes, 0u);
  uint64_t leftovers = 0;
  if (fs::exists(dir)) {
    for (const auto& e : fs::directory_iterator(dir)) {
      (void)e;
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0u);
  fs::remove_all(dir);
}

// Chaos: workers are SIGKILLed mid-map and mid-shuffle (the injection's
// timing bit covers both schedules — before the task body runs, and after
// the body produced output but before it was serialized), yet the job
// output stays bit-identical because attempts are pure and commit slots
// are task ids.
TEST(MultiprocessTest, WorkerCrashChaosStaysBitIdentical) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto clean = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                      MpOptions(), nullptr);
  ASSERT_TRUE(clean.ok());

  for (uint64_t seed : {1ull, 20260808ull}) {
    Options chaos = MpOptions();
    chaos.exec_mode = ExecMode::kFork;
    chaos.faults.worker_crash_rate = 0.35;
    chaos.faults.seed = seed;
    chaos.max_task_attempts = 24;
    chaos.max_worker_restarts = 64;
    // Random crashes are per (task, attempt); two in a row must not be
    // mistaken for a poisonous record in this test.
    chaos.quarantine_after_crashes = 24;
    JobCounters counters;
    auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                         chaos, &counters);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.status().ToString();
    EXPECT_EQ(*clean, *result) << "diverged at seed " << seed;
    EXPECT_GT(counters.worker_crashes, 0u) << "seed " << seed;
    EXPECT_GT(counters.worker_restarts, 0u) << "seed " << seed;
    EXPECT_EQ(counters.exec_fallbacks, 0u);
  }
}

// Same chaos schedule with a spill budget: a worker killed mid-shuffle has
// written spill files it will never commit; the supervisor's post-death
// reap deletes them (they are stamped with the dead worker's pid), and the
// retried attempt regenerates them. Output still matches the clean run.
TEST(MultiprocessTest, CrashChaosWithSpillsReapsOrphansAndStaysIdentical) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto clean = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                      MpOptions(), nullptr);
  ASSERT_TRUE(clean.ok());

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ddp_mp_crash_spill";
  fs::remove_all(dir);

  Options chaos = MpOptions();
  chaos.exec_mode = ExecMode::kFork;
  chaos.memory_budget_bytes = 64;
  chaos.spill_dir = dir.string();
  chaos.faults.worker_crash_rate = 0.35;
  chaos.faults.seed = 20260808;
  chaos.max_task_attempts = 24;
  chaos.max_worker_restarts = 64;
  chaos.quarantine_after_crashes = 24;
  JobCounters counters;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       chaos, &counters);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*clean, *result);
  EXPECT_GT(counters.worker_crashes, 0u);
  // Everything left in the spill dir after the job belongs to nobody.
  uint64_t leftovers = 0;
  if (fs::exists(dir)) {
    for (const auto& e : fs::directory_iterator(dir)) {
      (void)e;
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0u);
  fs::remove_all(dir);
}

// Hang detection: injected stragglers dawdle past the task deadline inside
// the worker; the supervisor SIGKILLs them (counted as hangs and deadline
// kills) and the retried attempts — a different (task, attempt) draw — run
// clean. Output matches the clean run exactly.
TEST(MultiprocessTest, HungWorkersAreKilledAndRetriedBitIdentical) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto clean = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                      MpOptions(), nullptr);
  ASSERT_TRUE(clean.ok());

  Options chaos = MpOptions();
  chaos.exec_mode = ExecMode::kFork;
  chaos.faults.straggler_rate = 0.3;
  chaos.faults.straggler_slowdown = 1.0;
  chaos.faults.straggler_min_seconds = 5.0;  // far past the deadline
  chaos.faults.seed = 20260808;
  chaos.task_deadline_seconds = 0.25;
  chaos.max_task_attempts = 24;
  chaos.max_worker_restarts = 64;
  JobCounters counters;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       chaos, &counters);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*clean, *result);
  EXPECT_GT(counters.worker_hangs, 0u);
  EXPECT_GT(counters.worker_kills, 0u);
  EXPECT_GT(counters.deadline_kills, 0u);
}

// Poison property: a task that deterministically SIGKILLs every worker that
// touches it (poison_task_rate = 1 redraws the same attempt-0 coin each
// retry) must converge under skip_bad_records — after
// quarantine_after_crashes consecutive worker deaths the task re-runs
// quarantined, suppressing the poison — and must fail the job cleanly
// without skip_bad_records.
TEST(MultiprocessTest, PoisonTasksQuarantineAndConverge) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto clean = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                      MpOptions(), nullptr);
  ASSERT_TRUE(clean.ok());

  Options poison = MpOptions();
  poison.exec_mode = ExecMode::kFork;
  poison.faults.poison_task_rate = 1.0;  // every task, every attempt
  poison.faults.seed = 20260808;
  poison.skip_bad_records = true;
  poison.max_task_attempts = 24;
  poison.max_worker_restarts = 256;
  JobCounters counters;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       poison, &counters);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Quarantined attempts suppress the injected poison and nothing else, so
  // the output bytes still match the clean run.
  EXPECT_EQ(*clean, *result);
  EXPECT_GT(counters.quarantined_tasks, 0u);
  EXPECT_GT(counters.skipped_records, 0u);
  EXPECT_GE(counters.worker_crashes,
            counters.quarantined_tasks * poison.quarantine_after_crashes);

  Options strict = poison;
  strict.skip_bad_records = false;
  auto failed = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       strict, nullptr);
  EXPECT_FALSE(failed.ok());
}

}  // namespace
}  // namespace mr
}  // namespace ddp

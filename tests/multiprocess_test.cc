// Multi-process execution suite: the framed channel wire format, the shared
// seeded backoff, the supervisor wire payloads, the orphan spill-file
// reaper, and — the contract everything else serves — bit-identity of
// --exec-mode=fork with the in-process executor, including under chaos
// schedules that SIGKILL workers mid-map and mid-shuffle, hang them past
// the task deadline, and poison tasks until they are quarantined.
//
// Fork-mode tests skip themselves where forked workers are unsupported
// (ForkExecutionSupported() == false, e.g. under TSan); the protocol,
// backoff, and reaper tests run everywhere.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "mapreduce/channel.h"
#include "mapreduce/counters.h"
#include "mapreduce/mapreduce.h"
#include "mapreduce/spill.h"
#include "mapreduce/supervisor.h"

namespace ddp {
namespace mr {
namespace {

// ---------------------------------------------------------------- channel

TEST(ChannelTest, LoopbackRoundTripsEveryMessageType) {
  auto [a, b] = LoopbackChannel::MakePair();
  const std::string big(100 * 1024, '\x5a');
  const Frame frames[] = {
      {MessageType::kHello, ""},
      {MessageType::kTask, std::string("\x00\x01\xff binary", 9)},
      {MessageType::kResult, big},
      {MessageType::kHeartbeat, "beat"},
      {MessageType::kShutdown, ""},
  };
  for (const Frame& f : frames) {
    ASSERT_TRUE(a->Send(f).ok());
    Frame got;
    ASSERT_TRUE(b->Recv(&got, 1.0).ok());
    EXPECT_EQ(got.type, f.type);
    EXPECT_EQ(got.payload, f.payload);
  }
}

TEST(ChannelTest, RecvTimesOutAndCloseYieldsIoError) {
  auto [a, b] = LoopbackChannel::MakePair();
  Frame got;
  EXPECT_TRUE(b->Recv(&got, 0.05).IsDeadlineExceeded());
  a->Close();
  EXPECT_TRUE(b->Recv(&got, 0.05).IsIoError());
}

TEST(ChannelTest, CorruptedFrameIsIoError) {
  Frame f{MessageType::kResult, "payload bytes that the crc protects"};
  std::string wire = EncodeFrame(f);

  // Flip one payload byte: the CRC32 trailer no longer matches.
  std::string flipped = wire;
  flipped[wire.size() / 2] ^= 0x01;
  auto [a, b] = LoopbackChannel::MakePair();
  b->InjectRaw(flipped);
  Frame got;
  EXPECT_TRUE(b->Recv(&got, 0.1).IsIoError());

  // Truncated frame: the payload ends before the declared length.
  b->InjectRaw(wire.substr(0, wire.size() - 6));
  EXPECT_TRUE(b->Recv(&got, 0.1).IsIoError());

  // An intact frame still decodes (corruption does not poison the channel
  // abstraction itself, only the one frame).
  b->InjectRaw(wire);
  ASSERT_TRUE(b->Recv(&got, 0.1).ok());
  EXPECT_EQ(got.payload, f.payload);
}

TEST(ChannelTest, DecodeFrameRoundTrip) {
  Frame f{MessageType::kTask, std::string(1, '\0') + "after-nul"};
  Frame got;
  ASSERT_TRUE(DecodeFrame(EncodeFrame(f), &got).ok());
  EXPECT_EQ(got.type, f.type);
  EXPECT_EQ(got.payload, f.payload);
}

TEST(ChannelTest, PipeChannelRoundTripsBothDirections) {
  auto pair = PipeChannel::CreatePair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  auto [parent, child] = std::move(*pair);

  ASSERT_TRUE(parent->Send({MessageType::kTask, "down"}).ok());
  Frame got;
  ASSERT_TRUE(child->Recv(&got, 2.0).ok());
  EXPECT_EQ(got.type, MessageType::kTask);
  EXPECT_EQ(got.payload, "down");

  ASSERT_TRUE(child->Send({MessageType::kResult, "up"}).ok());
  ASSERT_TRUE(parent->Recv(&got, 2.0).ok());
  EXPECT_EQ(got.type, MessageType::kResult);
  EXPECT_EQ(got.payload, "up");

  // Peer close reads as IoError (EOF), the supervisor's crash signal.
  child->Close();
  EXPECT_TRUE(parent->Recv(&got, 2.0).IsIoError());
}

// ---------------------------------------------------------------- backoff

TEST(BackoffTest, ScheduleIsDeterministicPerSeed) {
  ExponentialBackoff::Params p{0.01, 2.0, 0.5, 0.25};
  ExponentialBackoff a(p, 42), b(p, 42), c(p, 43);
  bool seed_changes_something = false;
  for (uint64_t attempt = 0; attempt < 12; ++attempt) {
    EXPECT_EQ(a.DelaySeconds(attempt), b.DelaySeconds(attempt));
    if (a.DelaySeconds(attempt) != c.DelaySeconds(attempt)) {
      seed_changes_something = true;
    }
  }
  EXPECT_TRUE(seed_changes_something);
}

TEST(BackoffTest, DelaysGrowAndRespectCapAndJitterWindow) {
  ExponentialBackoff::Params p{0.01, 2.0, 0.5, 0.25};
  ExponentialBackoff bo(p, 7);
  for (uint64_t attempt = 0; attempt < 16; ++attempt) {
    double ideal = p.base_seconds;
    for (uint64_t i = 0; i < attempt; ++i) ideal *= p.multiplier;
    if (ideal > p.max_seconds) ideal = p.max_seconds;
    double d = bo.DelaySeconds(attempt);
    EXPECT_GE(d, ideal * (1.0 - p.jitter)) << "attempt " << attempt;
    EXPECT_LE(d, ideal) << "attempt " << attempt;
  }
}

TEST(BackoffTest, ZeroJitterIsExactExponential) {
  ExponentialBackoff::Params p{0.02, 3.0, 1.0, 0.0};
  ExponentialBackoff bo(p, 1);
  EXPECT_DOUBLE_EQ(bo.DelaySeconds(0), 0.02);
  EXPECT_DOUBLE_EQ(bo.DelaySeconds(1), 0.06);
  EXPECT_DOUBLE_EQ(bo.DelaySeconds(2), 0.18);
  EXPECT_DOUBLE_EQ(bo.DelaySeconds(10), 1.0);  // capped
}

// ------------------------------------------------------- wire payloads

TEST(SupervisorCodecTest, TaskMsgRoundTrip) {
  TaskMsg in;
  in.task = 123456789;
  in.attempt = 7;
  in.quarantined = true;
  TaskMsg out;
  ASSERT_TRUE(TaskMsg::Decode(in.Encode(), &out).ok());
  EXPECT_EQ(out.task, in.task);
  EXPECT_EQ(out.attempt, in.attempt);
  EXPECT_EQ(out.quarantined, in.quarantined);
}

TEST(SupervisorCodecTest, ResultMsgRoundTrip) {
  ResultMsg in;
  in.task = 42;
  in.attempt = 3;
  in.status_code = static_cast<int32_t>(StatusCode::kIoError);
  in.status_message = "simulated";
  in.seconds = 0.125;
  in.payload = std::string("\x00\xff\x7f", 3);
  ResultMsg out;
  ASSERT_TRUE(ResultMsg::Decode(in.Encode(), &out).ok());
  EXPECT_EQ(out.task, in.task);
  EXPECT_EQ(out.attempt, in.attempt);
  EXPECT_EQ(out.status_code, in.status_code);
  EXPECT_EQ(out.status_message, in.status_message);
  EXPECT_EQ(out.seconds, in.seconds);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(SupervisorCodecTest, DecodeRejectsGarbage) {
  TaskMsg t;
  EXPECT_FALSE(TaskMsg::Decode("\xff", &t).ok());
  ResultMsg r;
  EXPECT_FALSE(ResultMsg::Decode("", &r).ok());
}

// ----------------------------------------------------------- spill reaper

TEST(SpillReaperTest, ReapsDeadOwnersKeepsLiveUntaggedAndForeign) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "ddp_mp_reaper_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto touch = [&](const std::string& name) {
    std::ofstream(dir / name) << "x";
  };
  // Pid 999999999 exceeds every Linux pid_max; its owner is dead by
  // construction. The second tag wins (adopted-file naming appends).
  touch("run-p999999999-u0-s0.spill");
  touch("run-p999999999-u1-s0-p999999998-a1.spill");
  touch("mine-" + internal::SpillOwnerTag() + "-u2-s0.spill");  // our own: kept
  touch("untagged.spill");                            // no owner tag: kept
  touch("not_a_spill.txt");                           // wrong suffix: kept

  EXPECT_EQ(ReapOrphanSpillFiles(dir.string()), 2u);
  EXPECT_FALSE(fs::exists(dir / "run-p999999999-u0-s0.spill"));
  EXPECT_FALSE(fs::exists(dir / "run-p999999999-u1-s0-p999999998-a1.spill"));
  EXPECT_TRUE(fs::exists(dir / ("mine-" + internal::SpillOwnerTag() + "-u2-s0.spill")));
  EXPECT_TRUE(fs::exists(dir / "untagged.spill"));
  EXPECT_TRUE(fs::exists(dir / "not_a_spill.txt"));

  // Second sweep finds nothing; missing directory is a no-op.
  EXPECT_EQ(ReapOrphanSpillFiles(dir.string()), 0u);
  fs::remove_all(dir);
  EXPECT_EQ(ReapOrphanSpillFiles(dir.string()), 0u);
}

// --------------------------------------------------- supervisor end-to-end

TEST(SupervisorTest, RunsEveryTaskAndCommitsByTaskId) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  SupervisorConfig config;
  config.job_name = "unit";
  config.num_workers = 3;
  config.num_tasks = 17;
  WorkerTaskFn fn = [](size_t task, size_t, bool, std::string* payload) {
    *payload = "task-" + std::to_string(task);
    return Status::OK();
  };
  std::vector<std::string> committed(config.num_tasks);
  CommitFn commit = [&committed](size_t task, bool, double,
                                 std::string payload) {
    committed[task] = std::move(payload);
    return Status::OK();
  };
  SupervisorStats stats;
  ASSERT_TRUE(WorkerSupervisor::RunPhase(config, fn, commit, &stats).ok());
  for (size_t t = 0; t < committed.size(); ++t) {
    EXPECT_EQ(committed[t], "task-" + std::to_string(t));
  }
  EXPECT_EQ(stats.worker_crashes, 0u);
  EXPECT_EQ(stats.durations.size(), committed.size());
}

TEST(SupervisorTest, FirstAttemptCrashIsRetriedOnAFreshWorker) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  SupervisorConfig config;
  config.job_name = "crash-once";
  config.num_workers = 2;
  config.num_tasks = 6;
  // Task 2's first attempt SIGKILLs its worker; every retry succeeds. This
  // runs in the child, so the "state" is per-attempt by construction.
  WorkerTaskFn fn = [](size_t task, size_t attempt, bool,
                       std::string* payload) {
    if (task == 2 && attempt == 0) CrashSelf();
    *payload = std::to_string(task);
    return Status::OK();
  };
  size_t committed = 0;
  CommitFn commit = [&committed](size_t, bool, double, std::string) {
    ++committed;
    return Status::OK();
  };
  SupervisorStats stats;
  ASSERT_TRUE(WorkerSupervisor::RunPhase(config, fn, commit, &stats).ok());
  EXPECT_EQ(committed, config.num_tasks);
  EXPECT_EQ(stats.worker_crashes, 1u);
  EXPECT_GE(stats.worker_restarts, 1u);
  EXPECT_GE(stats.retries, 1u);
}

// ----------------------------------------------- fork-mode bit identity

JobSpec<std::string, std::string, uint32_t, std::pair<std::string, uint32_t>>
WordCountSpec() {
  JobSpec<std::string, std::string, uint32_t, std::pair<std::string, uint32_t>>
      spec;
  spec.name = "mp-wordcount";
  spec.map = [](const std::string& doc, Emitter<std::string, uint32_t>* out) {
    size_t pos = 0;
    while (pos < doc.size()) {
      size_t end = doc.find(' ', pos);
      if (end == std::string::npos) end = doc.size();
      if (end > pos) out->Emit(doc.substr(pos, end - pos), 1);
      pos = end + 1;
    }
  };
  spec.reduce = [](const std::string& word, std::span<const uint32_t> counts,
                   std::vector<std::pair<std::string, uint32_t>>* out) {
    uint32_t total = 0;
    for (uint32_t c : counts) total += c;
    out->push_back({word, total});
  };
  return spec;
}

std::vector<std::string> Corpus() {
  // Deterministic, word-skewed corpus: enough documents for 8 map tasks and
  // enough distinct keys to populate every reduce partition.
  std::vector<std::string> docs;
  const char* words[] = {"alpha", "beta", "gamma", "delta", "rho", "peak"};
  for (int i = 0; i < 48; ++i) {
    std::string doc;
    for (int j = 0; j <= i % 5; ++j) {
      doc += std::string(words[(i * 7 + j * 3) % 6]) + " ";
    }
    doc += "w" + std::to_string(i % 11);
    docs.push_back(doc);
  }
  return docs;
}

Options MpOptions() {
  Options o;
  o.num_workers = 3;
  o.num_partitions = 5;
  return o;
}

TEST(MultiprocessTest, ForkModeIsBitIdenticalToInProcess) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  JobCounters inproc_counters;
  auto inproc = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       MpOptions(), &inproc_counters);
  ASSERT_TRUE(inproc.ok());

  Options forked = MpOptions();
  forked.exec_mode = ExecMode::kFork;
  JobCounters fork_counters;
  auto fork = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                     forked, &fork_counters);
  ASSERT_TRUE(fork.ok()) << fork.status().ToString();

  EXPECT_EQ(*inproc, *fork);  // exact vector equality: order and bytes
  EXPECT_EQ(fork_counters.exec_fallbacks, 0u);
  EXPECT_EQ(fork_counters.worker_crashes, 0u);
  // Shuffle accounting is computed from the same serialized intermediates
  // either way; the substrate must not change what gets shuffled.
  EXPECT_EQ(fork_counters.shuffle_bytes, inproc_counters.shuffle_bytes);
  EXPECT_EQ(fork_counters.shuffle_records, inproc_counters.shuffle_records);
  EXPECT_EQ(fork_counters.map_output_records,
            inproc_counters.map_output_records);
  EXPECT_EQ(fork_counters.reduce_input_groups,
            inproc_counters.reduce_input_groups);
}

TEST(MultiprocessTest, ForkModeUnderSpillBudgetIsBitIdentical) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto inproc = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       MpOptions(), nullptr);
  ASSERT_TRUE(inproc.ok());

  // A tiny budget forces every map task to spill; committed spill files are
  // adopted (renamed under the parent pid) across the process boundary and
  // the reduce workers stream the merge from them.
  Options forked = MpOptions();
  forked.exec_mode = ExecMode::kFork;
  forked.memory_budget_bytes = 64;
  JobCounters counters;
  auto fork = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                     forked, &counters);
  ASSERT_TRUE(fork.ok()) << fork.status().ToString();
  EXPECT_EQ(*inproc, *fork);
  EXPECT_EQ(counters.exec_fallbacks, 0u);
  EXPECT_GT(counters.spill_files, 0u);
  EXPECT_GT(counters.merge_passes, 0u);
}

// Chaos: workers are SIGKILLed mid-map and mid-shuffle (the injection's
// timing bit covers both schedules — before the task body runs, and after
// the body produced output but before it was serialized), yet the job
// output stays bit-identical because attempts are pure and commit slots
// are task ids.
TEST(MultiprocessTest, WorkerCrashChaosStaysBitIdentical) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto clean = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                      MpOptions(), nullptr);
  ASSERT_TRUE(clean.ok());

  for (uint64_t seed : {1ull, 20260808ull}) {
    Options chaos = MpOptions();
    chaos.exec_mode = ExecMode::kFork;
    chaos.faults.worker_crash_rate = 0.35;
    chaos.faults.seed = seed;
    chaos.max_task_attempts = 24;
    chaos.max_worker_restarts = 64;
    // Random crashes are per (task, attempt); two in a row must not be
    // mistaken for a poisonous record in this test.
    chaos.quarantine_after_crashes = 24;
    JobCounters counters;
    auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                         chaos, &counters);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.status().ToString();
    EXPECT_EQ(*clean, *result) << "diverged at seed " << seed;
    EXPECT_GT(counters.worker_crashes, 0u) << "seed " << seed;
    EXPECT_GT(counters.worker_restarts, 0u) << "seed " << seed;
    EXPECT_EQ(counters.exec_fallbacks, 0u);
  }
}

// Same chaos schedule with a spill budget: a worker killed mid-shuffle has
// written spill files it will never commit; the supervisor's post-death
// reap deletes them (they are stamped with the dead worker's pid), and the
// retried attempt regenerates them. Output still matches the clean run.
TEST(MultiprocessTest, CrashChaosWithSpillsReapsOrphansAndStaysIdentical) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto clean = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                      MpOptions(), nullptr);
  ASSERT_TRUE(clean.ok());

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ddp_mp_crash_spill";
  fs::remove_all(dir);

  Options chaos = MpOptions();
  chaos.exec_mode = ExecMode::kFork;
  chaos.memory_budget_bytes = 64;
  chaos.spill_dir = dir.string();
  chaos.faults.worker_crash_rate = 0.35;
  chaos.faults.seed = 20260808;
  chaos.max_task_attempts = 24;
  chaos.max_worker_restarts = 64;
  chaos.quarantine_after_crashes = 24;
  JobCounters counters;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       chaos, &counters);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*clean, *result);
  EXPECT_GT(counters.worker_crashes, 0u);
  // Everything left in the spill dir after the job belongs to nobody.
  uint64_t leftovers = 0;
  if (fs::exists(dir)) {
    for (const auto& e : fs::directory_iterator(dir)) {
      (void)e;
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0u);
  fs::remove_all(dir);
}

// Hang detection: injected stragglers dawdle past the task deadline inside
// the worker; the supervisor SIGKILLs them (counted as hangs and deadline
// kills) and the retried attempts — a different (task, attempt) draw — run
// clean. Output matches the clean run exactly.
TEST(MultiprocessTest, HungWorkersAreKilledAndRetriedBitIdentical) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto clean = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                      MpOptions(), nullptr);
  ASSERT_TRUE(clean.ok());

  Options chaos = MpOptions();
  chaos.exec_mode = ExecMode::kFork;
  chaos.faults.straggler_rate = 0.3;
  chaos.faults.straggler_slowdown = 1.0;
  chaos.faults.straggler_min_seconds = 5.0;  // far past the deadline
  chaos.faults.seed = 20260808;
  chaos.task_deadline_seconds = 0.25;
  chaos.max_task_attempts = 24;
  chaos.max_worker_restarts = 64;
  JobCounters counters;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       chaos, &counters);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*clean, *result);
  EXPECT_GT(counters.worker_hangs, 0u);
  EXPECT_GT(counters.worker_kills, 0u);
  EXPECT_GT(counters.deadline_kills, 0u);
}

// Poison property: a task that deterministically SIGKILLs every worker that
// touches it (poison_task_rate = 1 redraws the same attempt-0 coin each
// retry) must converge under skip_bad_records — after
// quarantine_after_crashes consecutive worker deaths the task re-runs
// quarantined, suppressing the poison — and must fail the job cleanly
// without skip_bad_records.
TEST(MultiprocessTest, PoisonTasksQuarantineAndConverge) {
  if (!ForkExecutionSupported()) {
    GTEST_SKIP() << "forked workers unsupported in this build";
  }
  std::vector<std::string> docs = Corpus();
  auto clean = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                      MpOptions(), nullptr);
  ASSERT_TRUE(clean.ok());

  Options poison = MpOptions();
  poison.exec_mode = ExecMode::kFork;
  poison.faults.poison_task_rate = 1.0;  // every task, every attempt
  poison.faults.seed = 20260808;
  poison.skip_bad_records = true;
  poison.max_task_attempts = 24;
  poison.max_worker_restarts = 256;
  JobCounters counters;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       poison, &counters);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Quarantined attempts suppress the injected poison and nothing else, so
  // the output bytes still match the clean run.
  EXPECT_EQ(*clean, *result);
  EXPECT_GT(counters.quarantined_tasks, 0u);
  EXPECT_GT(counters.skipped_records, 0u);
  EXPECT_GE(counters.worker_crashes,
            counters.quarantined_tasks * poison.quarantine_after_crashes);

  Options strict = poison;
  strict.skip_bad_records = false;
  auto failed = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       strict, nullptr);
  EXPECT_FALSE(failed.ok());
}

}  // namespace
}  // namespace mr
}  // namespace ddp

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/assignment.h"
#include "core/cutoff.h"
#include "core/decision_graph.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/driver.h"
#include "ddp/lsh_ddp.h"
#include "ddp/mr_assignment.h"
#include "eval/internal_metrics.h"
#include "eval/metrics.h"

namespace ddp {
namespace {

mr::Options FastMr() {
  mr::Options o;
  o.num_workers = 2;
  o.num_partitions = 8;
  return o;
}

// ------------------------------------------- MapReduce pointer jumping

TEST(MrAssignmentTest, MatchesCentralizedAssignmentExactly) {
  auto ds = gen::GaussianMixture(400, 3, 4, 200.0, 2.0, 71);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto dc = ChooseCutoff(*ds, metric);
  ASSERT_TRUE(dc.ok());
  auto scores = ComputeExactDp(*ds, *dc, metric);
  ASSERT_TRUE(scores.ok());
  DecisionGraph graph = DecisionGraph::FromScores(*scores);
  auto peaks = graph.SelectTopK(4);

  auto central = AssignClusters(*ds, *scores, peaks, metric);
  ASSERT_TRUE(central.ok());
  auto distributed = AssignClustersMapReduce(*scores, peaks, FastMr());
  ASSERT_TRUE(distributed.ok());
  // Exact scores have no orphans except possibly the absolute peak if it
  // wasn't selected; resolve identically and compare.
  ASSERT_TRUE(ResolveOrphansByNearestPeak(*ds, peaks, metric,
                                          &distributed->assignment)
                  .ok());
  EXPECT_EQ(distributed->assignment, central->assignment);
}

TEST(MrAssignmentTest, LongChainResolvesInLogRounds) {
  // A single chain 0 <- 1 <- 2 <- ... <- 1023 rooted at peak 0.
  const size_t n = 1024;
  DpScores scores;
  scores.Resize(n);
  for (size_t i = 0; i < n; ++i) {
    scores.rho[i] = static_cast<uint32_t>(n - i);
    scores.upslope[i] =
        i == 0 ? kInvalidPointId : static_cast<PointId>(i - 1);
  }
  std::vector<PointId> peaks = {0};
  auto result = AssignClustersMapReduce(scores, peaks, FastMr());
  ASSERT_TRUE(result.ok());
  for (int c : result->assignment) EXPECT_EQ(c, 0);
  // Chain length 1024 must resolve in ~log2(1024) + O(1) rounds, far below
  // the linear 1024.
  EXPECT_LE(result->rounds, 14u);
  EXPECT_GE(result->rounds, 8u);
}

TEST(MrAssignmentTest, OrphanChainsStayUnassignedThenResolve) {
  // Two chains: one rooted at a selected peak, one at an unselected local
  // peak (invalid upslope, not in peaks).
  DpScores scores;
  scores.Resize(6);
  scores.rho = {10, 9, 8, 20, 19, 18};
  scores.upslope = {kInvalidPointId, 0, 1, kInvalidPointId, 3, 4};
  std::vector<PointId> peaks = {3};  // only the second chain's root
  auto result = AssignClustersMapReduce(scores, peaks, FastMr());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment[3], 0);
  EXPECT_EQ(result->assignment[4], 0);
  EXPECT_EQ(result->assignment[5], 0);
  EXPECT_EQ(result->assignment[0], -1);  // orphan root
  EXPECT_EQ(result->assignment[1], -1);
  EXPECT_EQ(result->assignment[2], -1);

  Dataset ds(1);
  for (double x : {0.0, 0.1, 0.2, 5.0, 5.1, 5.2}) {
    ds.Add(std::vector<double>{x});
  }
  CountingMetric metric;
  ASSERT_TRUE(
      ResolveOrphansByNearestPeak(ds, peaks, metric, &result->assignment).ok());
  for (int c : result->assignment) EXPECT_EQ(c, 0);
}

TEST(MrAssignmentTest, WorksOnApproximateScores) {
  auto ds = gen::S2Like(5, 600);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto dc = ChooseCutoff(*ds, metric);
  ASSERT_TRUE(dc.ok());
  LshDdp lsh;
  auto scores = lsh.ComputeScores(*ds, *dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(scores.ok());
  DecisionGraph graph = DecisionGraph::FromScores(*scores);
  auto peaks = graph.SelectTopK(15);

  auto central = AssignClusters(*ds, *scores, peaks, metric);
  ASSERT_TRUE(central.ok());
  auto distributed = AssignClustersMapReduce(*scores, peaks, FastMr());
  ASSERT_TRUE(distributed.ok());
  ASSERT_TRUE(ResolveOrphansByNearestPeak(*ds, peaks, metric,
                                          &distributed->assignment)
                  .ok());
  EXPECT_EQ(distributed->assignment, central->assignment);
}

TEST(MrAssignmentTest, Validation) {
  DpScores scores;
  EXPECT_FALSE(AssignClustersMapReduce(scores, std::vector<PointId>{0}).ok());
  scores.Resize(3);
  EXPECT_FALSE(AssignClustersMapReduce(scores, std::vector<PointId>{}).ok());
  EXPECT_FALSE(AssignClustersMapReduce(scores, std::vector<PointId>{9}).ok());
  EXPECT_FALSE(
      AssignClustersMapReduce(scores, std::vector<PointId>{1, 1}).ok());
}

TEST(MrAssignmentTest, DriverFlagMatchesCentralizedPipeline) {
  auto ds = gen::S2Like(9, 800);
  ASSERT_TRUE(ds.ok());
  DdpOptions central_opts, mr_opts;
  central_opts.mr = mr_opts.mr = FastMr();
  central_opts.dc = mr_opts.dc = 40000.0;
  central_opts.selector = mr_opts.selector = PeakSelector::TopK(15);
  mr_opts.use_mr_assignment = true;
  LshDdp algo1, algo2;
  auto central = RunDistributedDp(&algo1, *ds, central_opts);
  auto distributed = RunDistributedDp(&algo2, *ds, mr_opts);
  ASSERT_TRUE(central.ok() && distributed.ok());
  EXPECT_EQ(central->clusters.assignment, distributed->clusters.assignment);
  // The MR-assignment run reports the extra jump jobs in its stats.
  EXPECT_GT(distributed->stats.jobs.size(), central->stats.jobs.size());
}

// --------------------------------------------------- Internal metrics

TEST(InternalMetricsTest, SseZeroForSingletonClusters) {
  Dataset ds(1);
  ds.Add(std::vector<double>{1.0});
  ds.Add(std::vector<double>{5.0});
  std::vector<int> each_alone = {0, 1};
  auto sse = eval::SumSquaredError(ds, each_alone);
  ASSERT_TRUE(sse.ok());
  EXPECT_DOUBLE_EQ(*sse, 0.0);
}

TEST(InternalMetricsTest, SseKnownValue) {
  Dataset ds(1);
  for (double x : {0.0, 2.0, 10.0, 12.0}) ds.Add(std::vector<double>{x});
  std::vector<int> two = {0, 0, 1, 1};
  // Centroids 1 and 11; each point at distance 1 -> SSE = 4.
  auto sse = eval::SumSquaredError(ds, two);
  ASSERT_TRUE(sse.ok());
  EXPECT_DOUBLE_EQ(*sse, 4.0);
  // Merging everything raises SSE.
  std::vector<int> one = {0, 0, 0, 0};
  EXPECT_GT(*eval::SumSquaredError(ds, one), *sse);
}

TEST(InternalMetricsTest, SilhouetteHighForSeparatedBlobs) {
  auto ds = gen::GaussianMixture(200, 2, 2, 500.0, 1.0, 73);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto sil = eval::MeanSilhouette(*ds, ds->labels(), metric);
  ASSERT_TRUE(sil.ok());
  EXPECT_GT(*sil, 0.9);
}

TEST(InternalMetricsTest, SilhouetteLowForRandomAssignment) {
  auto ds = gen::GaussianMixture(200, 2, 2, 500.0, 1.0, 73);
  ASSERT_TRUE(ds.ok());
  // The generator assigns ground truth round-robin (i % 2), so a block
  // split (first half vs second half) mixes both true clusters in each
  // label — geometrically meaningless.
  std::vector<int> random_labels(ds->size());
  for (size_t i = 0; i < random_labels.size(); ++i) {
    random_labels[i] = i < random_labels.size() / 2 ? 0 : 1;
  }
  CountingMetric metric;
  auto good = eval::MeanSilhouette(*ds, ds->labels(), metric);
  auto bad = eval::MeanSilhouette(*ds, random_labels, metric);
  ASSERT_TRUE(good.ok() && bad.ok());
  EXPECT_GT(*good, *bad + 0.5);
}

TEST(InternalMetricsTest, SampledSilhouetteApproximatesFull) {
  auto ds = gen::GaussianMixture(400, 2, 3, 300.0, 2.0, 79);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto full = eval::MeanSilhouette(*ds, ds->labels(), metric);
  eval::SilhouetteOptions options;
  options.sample = 100;
  auto sampled = eval::MeanSilhouette(*ds, ds->labels(), metric, options);
  ASSERT_TRUE(full.ok() && sampled.ok());
  EXPECT_NEAR(*sampled, *full, 0.05);
}

TEST(InternalMetricsTest, DaviesBouldinPrefersTrueClustering) {
  auto ds = gen::GaussianMixture(300, 2, 3, 400.0, 2.0, 83);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto good = eval::DaviesBouldin(*ds, ds->labels(), metric);
  std::vector<int> shifted(ds->labels().begin(), ds->labels().end());
  // Corrupt a third of the labels.
  for (size_t i = 0; i < shifted.size(); i += 3) {
    shifted[i] = (shifted[i] + 1) % 3;
  }
  auto bad = eval::DaviesBouldin(*ds, shifted, metric);
  ASSERT_TRUE(good.ok() && bad.ok());
  EXPECT_LT(*good, *bad);
}

TEST(InternalMetricsTest, NoisePointsAreExcluded) {
  Dataset ds(1);
  for (double x : {0.0, 0.5, 10.0, 10.5, 1e6}) ds.Add(std::vector<double>{x});
  std::vector<int> with_noise = {0, 0, 1, 1, -1};
  CountingMetric metric;
  auto sse = eval::SumSquaredError(ds, with_noise);
  ASSERT_TRUE(sse.ok());
  EXPECT_LT(*sse, 1.0);  // the 1e6 outlier does not contribute
  EXPECT_TRUE(eval::MeanSilhouette(ds, with_noise, metric).ok());
  EXPECT_TRUE(eval::DaviesBouldin(ds, with_noise, metric).ok());
}

TEST(InternalMetricsTest, Validation) {
  Dataset ds(1);
  ds.Add(std::vector<double>{0.0});
  CountingMetric metric;
  std::vector<int> wrong_size = {0, 1};
  EXPECT_FALSE(eval::SumSquaredError(ds, wrong_size).ok());
  std::vector<int> one_cluster = {0};
  EXPECT_FALSE(eval::MeanSilhouette(ds, one_cluster, metric).ok());
  EXPECT_FALSE(eval::DaviesBouldin(ds, one_cluster, metric).ok());
  std::vector<int> all_noise = {-1};
  EXPECT_FALSE(eval::SumSquaredError(ds, all_noise).ok());
}

}  // namespace
}  // namespace ddp

// Fixture: the R7 exemption is pinned to the ddp_worker.cc file name, not
// to the tools/ directory — any other tool keeps the ban (violation on
// line 5).
int Escape() {
  int child = fork();
  return child;
}

// R7 fixture: tools/ddp_worker.cc shares the process-control exemption
// with src/mapreduce/ and src/server/ — the worker binary is the
// subsystem's process entry point and owns the lifecycle of the sibling
// workers it spawns for --workers N.
#include <sys/socket.h>

int ServeAsWorker(int supervisor_pid) {
  int child = fork();
  if (child == 0) return 0;
  int fd = socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0);
  if (fd >= 0 && connect(fd, nullptr, 0) != 0) return -1;
  kill(supervisor_pid, 0);
  return waitpid(child, nullptr, 0);
}

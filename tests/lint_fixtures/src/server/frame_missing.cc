// R9 fixture: Dispatch handles two of four frame types with no default
// (flagged at the switch); Reject hides the rest behind an unannotated
// default (flagged at the default).

enum class MessageType : unsigned char {
  kHello = 0,
  kTask = 1,
  kResult = 2,
  kShutdown = 3,
};

int Dispatch(MessageType t) {
  switch (t) {
    case MessageType::kHello:
      return 1;
    case MessageType::kTask:
      return 2;
  }
  return 0;
}

int Reject(MessageType t) {
  switch (t) {
    case MessageType::kHello:
      return 1;
    default:
      return 0;
  }
}

// R7 fixture: raw socket primitives are allowed under src/server/, where
// the serving daemon owns its listener and connection lifecycle.
#include <sys/socket.h>

int OpenListener() {
  int fd = socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0);
  if (fd >= 0 && listen(fd, 16) != 0) return -1;
  return fd;
}

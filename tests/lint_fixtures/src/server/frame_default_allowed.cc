// R9 fixture: same shape as frame_missing.cc, but the default carries an
// annotated allow — rejecting the worker frames wholesale is deliberate.

enum class MessageType : unsigned char {
  kHello = 0,
  kTask = 1,
  kResult = 2,
};

int Dispatch(MessageType t) {
  switch (t) {
    case MessageType::kHello:
      return 1;
    // ddp-lint: allow(frame-exhaustive) -- kTask and kResult are
    // worker-protocol frames; this client-side dispatcher rejects them all.
    default:
      return 0;
  }
}

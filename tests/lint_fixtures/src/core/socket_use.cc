// Fixture: raw socket primitives outside src/mapreduce/ trip R7; member
// calls on unrelated types (server.listen) and member/function
// declarations (void listen(int)) do not.
#include <cstdint>
void SocketUse() {
  int fd = socket(2, 1, 0);
  listen(fd, 16);
  connect(fd, nullptr, 0);
}
struct Server {
  void listen(int) {}
};
void MemberOk(Server& server) { server.listen(1); }

// Fixture: R7 process-control, violations on lines 5 and 7 only (the
// member-call wait on line 8 is an unrelated condition variable).
int Escape(int pid, void* cv_ptr, void* lock) {
  (void)cv_ptr;
  int child = fork();
  if (child == 0) return 0;
  kill(pid, 9);
  static_cast<std::condition_variable*>(cv_ptr)->wait(lock);
  return child;
}

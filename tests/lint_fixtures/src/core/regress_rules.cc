// Regression fixture exercising R1-R5 and R7 in one file. lint_test.cc pins
// the diagnostics byte-for-byte against the output of the pre-rewrite
// (line-regex) ddp_lint, so the token-stream rewrite cannot silently change
// any R1-R7 behavior. R6 lives in regress_rules.h next door.
#include <unordered_map>
#include <vector>

namespace regress {

std::atomic<int> hits;

double Norm(double dx, double dy) {
  return sqrt(dx * dx + dy * dy);
}

void EmitAll(const std::unordered_map<int, int>& groups,
             std::vector<int>* out) {
  for (const auto& kv : groups) {
    out->push_back(kv.second);
  }
}

void Bump() {
  hits++;
  (void)hits.load();
}

int SeedBadly() {
  return rand();
}

void TraceBadName() {
  DDP_TRACE_SPAN(span, "core", "Bad-Name");
}

void SpawnChild() {
  fork();
}

double AllowedSqrt(double d2) {
  return sqrt(d2);  // ddp-lint: allow(no-raw-sqrt) -- final assembly distance
}

}  // namespace regress

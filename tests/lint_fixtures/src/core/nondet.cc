// Fixture: R4 banned-nondeterminism, one violation on line 3.
int Roll() {
  return rand() % 6;
}

// Fixture: an allow() without '-- <reason>' neither suppresses nor passes.
double Norm(double x_sq) {
  // ddp-lint: allow(no-raw-sqrt)
  return std::sqrt(x_sq);
}

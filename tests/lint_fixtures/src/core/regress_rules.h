// Regression fixture for R6: no #pragma once, and a using namespace.
namespace regress_h {
using namespace std;
}  // namespace regress_h

// Fixture: an allow() that matches no finding is itself a finding.
double Identity(double x) {
  // ddp-lint: allow(no-raw-sqrt) -- fixture: nothing here needs this.
  return x;
}

// Fixture: R1 no-raw-sqrt, one violation on line 3.
double Norm(double x_sq) {
  return std::sqrt(x_sq);
}

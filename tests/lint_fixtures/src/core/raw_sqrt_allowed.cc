// Fixture: suppression round-trip — an allow() with a reason is clean.
double Norm(double x_sq) {
  // ddp-lint: allow(no-raw-sqrt) -- fixture: this is the final-assembly site.
  return std::sqrt(x_sq);
}

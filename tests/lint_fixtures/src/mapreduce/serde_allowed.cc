// R8 fixture: the v1 wire order swap is acknowledged inline, so the
// suppressed finding must not surface (and the suppression counts as used).

void LegacyMsg::Encode(BufferWriter& w) const {
  w.PutVarint64(id);
  w.PutString(name);
}

// ddp-lint: allow(serde-symmetry) -- v1 readers take string-then-id by
// historical accident; both sides follow the v1 framing note in the header.
void LegacyMsg::Decode(BufferReader& r) {
  r.GetString(&name);
  r.GetVarint64(&id);
}

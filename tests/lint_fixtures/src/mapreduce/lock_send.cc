// R10 fixture: Broadcast holds `lock` across a channel Send and Flush holds
// it across a spill write; Drain releases before sending, so its unique_lock
// is clean.

#include <mutex>

Status Broadcast(CommChannel* ch, const Frame& f) {
  std::lock_guard<std::mutex> lock(mu_);
  return ch->Send(f);
}

void Flush(SpillFileWriter& spill) {
  std::lock_guard<std::mutex> lock(mu_);
  spill.Append(rec_);
}

void Drain(CommChannel* ch, const Frame& f) {
  std::unique_lock<std::mutex> lk(mu_);
  lk.unlock();
  ch->Send(f);
}

// R8 fixture: TaskMsg swaps two same-kind fields between Encode and Decode
// (field-order mismatch); AckMsg drops a field entirely (kind mismatch).

void TaskMsg::Encode(BufferWriter& w) const {
  w.PutVarint64(job_id);
  w.PutVarint64(attempt);
  w.PutString(name);
}

void TaskMsg::Decode(BufferReader& r) {
  r.GetVarint64(&attempt);
  r.GetVarint64(&job_id);
  r.GetString(&name);
}

void AckMsg::Encode(BufferWriter& w) const {
  w.PutVarint32(code);
  w.PutString(detail);
}

void AckMsg::Decode(BufferReader& r) {
  r.GetVarint32(&code);
}

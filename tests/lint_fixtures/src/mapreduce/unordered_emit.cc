// Fixture: R2 ordered-emission — hash-order iteration feeding Emit (line 6),
// plus a collect-then-sort sibling that must stay clean.
#include <unordered_map>

void EmitAll(Sink* sink, const std::unordered_map<int, int>& counts) {
  for (const auto& [k, v] : counts) {
    sink->Emit(k, v);
  }
}

void EmitSorted(Sink* sink, const std::unordered_map<int, int>& counts) {
  std::vector<int> keys;
  for (const auto& [k, v] : counts) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  for (int k : keys) sink->Emit(k, counts.at(k));
}

// R10 fixture: the wrapper's whole purpose is serializing frames on the
// shared channel, so the held Send is annotated.

#include <mutex>

Status Broadcast(CommChannel* ch, const Frame& f) {
  std::lock_guard<std::mutex> lock(mu_);
  // ddp-lint: allow(lock-across-blocking) -- frames from concurrent callers
  // must not interleave mid-frame; holding across the Send is the contract.
  return ch->Send(f);
}

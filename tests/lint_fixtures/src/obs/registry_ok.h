// R11 fixture registry: consistent with observability_ok.md.
#pragma once

namespace ddp::obs {

inline constexpr const char* kCatMr = "mr";
inline constexpr const char* kSpanMapPhase = "map_phase";
inline constexpr const char* kMetricMrJobs = "mr.jobs";

}  // namespace ddp::obs

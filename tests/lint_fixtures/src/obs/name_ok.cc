// R11 fixture: every site references a registered constant, so the
// name-registry rule stays quiet.

void Touch() {
  DDP_METRIC_COUNTER_ADD(obs::kMetricMrJobs, 1);
  DDP_TRACE_SCOPE(obs::kCatMr, obs::kSpanMapPhase);
}

// R11 fixture registry: kSpanOrphanPhase has no row in
// observability_drift.md, and that doc's mr.ghost_total row has no
// constant here — drift in both directions.
#pragma once

namespace ddp::obs {

inline constexpr const char* kCatMr = "mr";
inline constexpr const char* kSpanMapPhase = "map_phase";
inline constexpr const char* kSpanOrphanPhase = "orphan_phase";
inline constexpr const char* kMetricMrJobs = "mr.jobs";

}  // namespace ddp::obs

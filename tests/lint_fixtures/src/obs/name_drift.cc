// R11 fixture: one unregistered metric literal, one reference to a constant
// the registry does not define, and one unregistered span name.

void Touch() {
  DDP_METRIC_COUNTER_ADD("mr.unregistered_total", 1);
  DDP_METRIC_HISTOGRAM_SECONDS(kMetricGhostSeconds, 0.5);
  DDP_TRACE_SCOPE("mr", "unregistered_phase");
}

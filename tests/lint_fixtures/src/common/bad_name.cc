// Fixture: R5 name-hygiene, one violation on line 3.
void Traced() {
  DDP_TRACE_SPAN("Bad-Name");
  DDP_TRACE_SPAN("good_name.ok");
}

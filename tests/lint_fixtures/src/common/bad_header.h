// Fixture: R6 header-hygiene — no #pragma once (line 1), line 2 leaks.
using namespace std;

// Fixture: R3 explicit-memory-order — implicit seq_cst increment (line 7)
// and a load() without an order argument (line 9).
#include <atomic>

int Bump() {
  std::atomic<int> counter{0};
  ++counter;
  counter.fetch_add(1, std::memory_order_relaxed);
  return counter.load();
}

// Serving-layer suite: the kJob* wire protocol, the (dataset digest,
// canonical params) cache keys, and a real DdpServer on an ephemeral TCP
// port exercised by DdpClient connections — submit/poll/result round trip,
// concurrent jobs against the bounded queue and the admission budget,
// result-cache hits that are bit-identical to the cold run without
// re-running any map/reduce work, dataset-cache reuse, cancel, client
// disconnect mid-job, and the graceful-shutdown drain. Chaos, where used,
// is the seeded fault injection of the MapReduce runtime, so every failure
// schedule is reproducible.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataset/csv.h"
#include "dataset/generators.h"
#include "dataset/sharded_io.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace ddp {
namespace server {
namespace {

namespace fs = std::filesystem;

uint64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "ddp_server_test").string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    auto ds = gen::S2Like(7, 300);
    ASSERT_TRUE(ds.ok());
    dataset_path_ = dir_ + "/data.csv";
    ASSERT_TRUE(WriteCsvFile(dataset_path_, *ds).ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  ServerConfig BaseConfig() const {
    ServerConfig config;
    config.work_dir = dir_ + "/work";
    config.drain_timeout_seconds = 30.0;
    config.poll_interval_seconds = 0.02;
    return config;
  }

  JobParams BaseParams() const {
    JobParams params;
    params.algo = "lsh";
    params.k = 10;
    params.seed = 5;
    return params;
  }

  Result<std::unique_ptr<DdpClient>> Connect(const DdpServer& srv) const {
    return DdpClient::Connect("127.0.0.1", srv.port(), /*deadline=*/10.0);
  }

  JobSubmitMsg Submission(const JobParams& params) const {
    JobSubmitMsg msg;
    msg.params = params;
    msg.dataset_path = dataset_path_;
    return msg;
  }

  std::string dir_;
  std::string dataset_path_;
};

// ------------------------------------------------------------- protocol

TEST(ServerProtocolTest, MessagesRoundTrip) {
  JobParams params;
  params.algo = "basic";
  params.dc = 1.25;
  params.k = 7;
  params.memory_budget_bytes = 1 << 20;
  params.exec_mode = 1;
  params.seed = 42;
  params.map_failure_rate = 0.125;
  JobParams params2;
  ASSERT_TRUE(JobParams::Decode(params.Encode(), &params2).ok());
  EXPECT_EQ(params2.CanonicalKey(), params.CanonicalKey());

  JobSubmitMsg submit;
  submit.params = params;
  submit.dataset_path = "/data/points.ddpb";
  submit.progress_seconds = 0.5;
  JobSubmitMsg submit2;
  ASSERT_TRUE(JobSubmitMsg::Decode(submit.Encode(), &submit2).ok());
  EXPECT_EQ(submit2.dataset_path, submit.dataset_path);
  EXPECT_EQ(submit2.progress_seconds, submit.progress_seconds);
  EXPECT_EQ(submit2.params.CanonicalKey(), params.CanonicalKey());

  JobStatusMsg status;
  status.job_id = 9;
  status.state = static_cast<uint8_t>(JobState::kRejected);
  status.detail = "queue full";
  status.queue_position = 3;
  status.mr_jobs_done = 2;
  status.running_seconds = 1.5;
  status.from_result_cache = 1;
  JobStatusMsg status2;
  ASSERT_TRUE(JobStatusMsg::Decode(status.Encode(), &status2).ok());
  EXPECT_EQ(status2.job_id, 9u);
  EXPECT_EQ(status2.detail, "queue full");
  EXPECT_EQ(status2.queue_position, 3u);
  EXPECT_EQ(status2.from_result_cache, 1);

  JobResultPayload payload;
  payload.dc = 2.5;
  payload.num_clusters = 3;
  payload.assignment = {0, 1, 2, 1, 0, -1};
  payload.distance_evaluations = 1234;
  payload.total_seconds = 0.75;
  payload.mr_jobs = 5;
  JobResultPayload payload2;
  ASSERT_TRUE(JobResultPayload::Decode(payload.Encode(), &payload2).ok());
  EXPECT_EQ(payload2.assignment, payload.assignment);
  EXPECT_EQ(payload2.num_clusters, 3u);

  JobResultMsg result;
  result.job_id = 9;
  result.state = static_cast<uint8_t>(JobState::kDone);
  result.from_result_cache = 1;
  result.payload = payload.Encode();
  JobResultMsg result2;
  ASSERT_TRUE(JobResultMsg::Decode(result.Encode(), &result2).ok());
  EXPECT_EQ(result2.payload, result.payload);
}

TEST(ServerProtocolTest, DecodeRejectsGarbageAndTrailingBytes) {
  JobParams params;
  EXPECT_FALSE(JobParams::Decode("garbage", &params).ok());
  std::string extra = JobPollMsg{}.Encode() + "x";
  JobPollMsg poll;
  EXPECT_FALSE(JobPollMsg::Decode(extra, &poll).ok());
}

TEST(ServerProtocolTest, CanonicalKeySeparatesDistinctParams) {
  JobParams a;
  JobParams b = a;
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  b.seed = 99;
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
  b = a;
  b.algo = "basic";
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
  b = a;
  b.dc = 0.30000000000000004;  // differs from 0.3 only past %.6g
  JobParams c = a;
  c.dc = 0.3;
  EXPECT_NE(b.CanonicalKey(), c.CanonicalKey());
}

// ------------------------------------------------------- submit round trip

TEST_F(ServerTest, SubmitPollResultRoundTripOverTcp) {
  auto srv = DdpServer::Start(BaseConfig());
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto submitted = (*client)->Submit(Submission(BaseParams()));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_NE(submitted->state, static_cast<uint8_t>(JobState::kRejected))
      << submitted->detail;
  const uint64_t job_id = submitted->job_id;

  auto done = (*client)->WaitForResult(job_id, /*timeout=*/60.0);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done->state, static_cast<uint8_t>(JobState::kDone))
      << done->detail;
  EXPECT_EQ(done->from_result_cache, 0);

  auto result = (*client)->FetchResult(job_id);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->state, static_cast<uint8_t>(JobState::kDone));
  JobResultPayload payload;
  ASSERT_TRUE(JobResultPayload::Decode(result->payload, &payload).ok());
  EXPECT_EQ(payload.assignment.size(), 300u);
  EXPECT_EQ(payload.num_clusters, 10u);
  EXPECT_GT(payload.mr_jobs, 0u);
  EXPECT_GT(payload.distance_evaluations, 0u);

  // Unknown ids answer with a failed status, not a dropped connection.
  auto unknown = (*client)->Poll(9999);
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->state, static_cast<uint8_t>(JobState::kFailed));
  EXPECT_EQ(unknown->detail, "unknown job id");
}

TEST_F(ServerTest, ProgressPushesArriveWhileWaiting) {
  auto srv = DdpServer::Start(BaseConfig());
  ASSERT_TRUE(srv.ok());
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok());

  size_t pushes = 0;
  (*client)->set_progress_handler(
      [&pushes](const JobStatusMsg&) { ++pushes; });
  JobSubmitMsg msg = Submission(BaseParams());
  msg.progress_seconds = 0.01;  // push on every poll tick
  auto submitted = (*client)->Submit(msg);
  ASSERT_TRUE(submitted.ok());
  auto done = (*client)->WaitForResult(submitted->job_id, 60.0);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, static_cast<uint8_t>(JobState::kDone));
  // At minimum the terminal push arrives (subscriptions push once more on a
  // terminal state before unsubscribing).
  EXPECT_GE(pushes, 1u);
}

// ------------------------------------------------ caches and admission

TEST_F(ServerTest, ResultCacheHitIsBitIdenticalAndRunsNothing) {
  auto srv = DdpServer::Start(BaseConfig());
  ASSERT_TRUE(srv.ok());
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok());

  auto first = (*client)->Submit(Submission(BaseParams()));
  ASSERT_TRUE(first.ok());
  auto first_done = (*client)->WaitForResult(first->job_id, 60.0);
  ASSERT_TRUE(first_done.ok());
  ASSERT_EQ(first_done->state, static_cast<uint8_t>(JobState::kDone));
  auto cold = (*client)->FetchResult(first->job_id);
  ASSERT_TRUE(cold.ok());

  const uint64_t hits_before = CounterValue("server.result_cache_hits");
  const uint64_t evals_before = CounterValue("local_dp.distance_evals");

  // Identical (dataset digest, params): answered at submit time from the
  // result cache without touching the MapReduce runtime.
  auto second = (*client)->Submit(Submission(BaseParams()));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->state, static_cast<uint8_t>(JobState::kDone));
  EXPECT_EQ(second->from_result_cache, 1);
  EXPECT_NE(second->job_id, first->job_id);
  auto warm = (*client)->FetchResult(second->job_id);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->from_result_cache, 1);
  EXPECT_EQ(warm->payload, cold->payload);  // bit-identical bytes

  EXPECT_EQ(CounterValue("server.result_cache_hits"), hits_before + 1);
  // Zero incremental distance evaluations: nothing was recomputed.
  EXPECT_EQ(CounterValue("local_dp.distance_evals"), evals_before);

  // Different params miss the cache.
  JobParams other = BaseParams();
  other.k = 4;
  auto third = (*client)->Submit(Submission(other));
  ASSERT_TRUE(third.ok());
  EXPECT_NE(third->state, static_cast<uint8_t>(JobState::kRejected));
  EXPECT_EQ(third->from_result_cache, 0);
  auto third_done = (*client)->WaitForResult(third->job_id, 60.0);
  ASSERT_TRUE(third_done.ok());
  EXPECT_EQ(third_done->state, static_cast<uint8_t>(JobState::kDone));
}

TEST_F(ServerTest, DatasetCacheIsReusedAcrossJobs) {
  auto srv = DdpServer::Start(BaseConfig());
  ASSERT_TRUE(srv.ok());
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok());

  const uint64_t hits_before = CounterValue("server.dataset_cache_hits");
  const uint64_t misses_before = CounterValue("server.dataset_cache_misses");

  // Two jobs, same dataset, different params: one load, one reuse.
  for (uint64_t k : {uint64_t{10}, uint64_t{6}}) {
    JobParams params = BaseParams();
    params.k = k;
    auto submitted = (*client)->Submit(Submission(params));
    ASSERT_TRUE(submitted.ok());
    ASSERT_NE(submitted->state, static_cast<uint8_t>(JobState::kRejected));
    auto done = (*client)->WaitForResult(submitted->job_id, 60.0);
    ASSERT_TRUE(done.ok());
    ASSERT_EQ(done->state, static_cast<uint8_t>(JobState::kDone));
  }
  EXPECT_EQ(CounterValue("server.dataset_cache_misses"), misses_before + 1);
  EXPECT_EQ(CounterValue("server.dataset_cache_hits"), hits_before + 1);
}

TEST_F(ServerTest, SameDatasetBytesUnderTwoPathsShareCacheEntries) {
  auto srv = DdpServer::Start(BaseConfig());
  ASSERT_TRUE(srv.ok());
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok());

  // Copy the dataset: digest-keyed caches must treat it as the same data.
  const std::string copy = dir_ + "/copy.csv";
  fs::copy_file(dataset_path_, copy);

  auto first = (*client)->Submit(Submission(BaseParams()));
  ASSERT_TRUE(first.ok());
  auto first_done = (*client)->WaitForResult(first->job_id, 60.0);
  ASSERT_TRUE(first_done.ok());
  ASSERT_EQ(first_done->state, static_cast<uint8_t>(JobState::kDone));

  JobSubmitMsg msg = Submission(BaseParams());
  msg.dataset_path = copy;
  auto second = (*client)->Submit(msg);
  ASSERT_TRUE(second.ok());
  // Same digest, same canonical params -> result-cache hit despite the
  // different path.
  EXPECT_EQ(second->state, static_cast<uint8_t>(JobState::kDone));
  EXPECT_EQ(second->from_result_cache, 1);
}

TEST_F(ServerTest, ConcurrentJobsAllCompleteUnderChaos) {
  ServerConfig config = BaseConfig();
  config.scheduler_threads = 3;
  auto srv = DdpServer::Start(config);
  ASSERT_TRUE(srv.ok());

  // Six distinct jobs from six connections, three running at a time, all
  // under seeded map/reduce failure chaos. Every one must complete.
  constexpr size_t kJobs = 6;
  std::vector<std::string> errors(kJobs);
  std::vector<std::thread> clients;
  clients.reserve(kJobs);
  for (size_t i = 0; i < kJobs; ++i) {
    clients.emplace_back([this, &srv, &errors, i] {
      auto client = Connect(**srv);
      if (!client.ok()) {
        errors[i] = client.status().ToString();
        return;
      }
      JobParams params = BaseParams();
      params.k = 3 + i;  // distinct cache keys
      params.map_failure_rate = 0.2;
      params.reduce_failure_rate = 0.1;
      params.seed = 100 + i;
      auto submitted = (*client)->Submit(Submission(params));
      if (!submitted.ok()) {
        errors[i] = submitted.status().ToString();
        return;
      }
      if (submitted->state == static_cast<uint8_t>(JobState::kRejected)) {
        errors[i] = "rejected: " + submitted->detail;
        return;
      }
      auto done = (*client)->WaitForResult(submitted->job_id, 120.0);
      if (!done.ok()) {
        errors[i] = done.status().ToString();
      } else if (done->state != static_cast<uint8_t>(JobState::kDone)) {
        errors[i] = "terminal state " + done->detail;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(errors[i], "") << "job " << i;
  }
}

TEST_F(ServerTest, FullQueueRejectsWithReason) {
  ServerConfig config = BaseConfig();
  config.max_queued_jobs = 0;  // nothing may wait: every submit bounces
  auto srv = DdpServer::Start(config);
  ASSERT_TRUE(srv.ok());
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok());

  const uint64_t rejected_before = CounterValue("server.jobs_rejected");
  auto submitted = (*client)->Submit(Submission(BaseParams()));
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(submitted->state, static_cast<uint8_t>(JobState::kRejected));
  EXPECT_NE(submitted->detail.find("queue full"), std::string::npos)
      << submitted->detail;
  EXPECT_EQ(CounterValue("server.jobs_rejected"), rejected_before + 1);

  // Rejected jobs stay pollable with the reason attached.
  auto polled = (*client)->Poll(submitted->job_id);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->state, static_cast<uint8_t>(JobState::kRejected));
  EXPECT_EQ(polled->detail, submitted->detail);
}

TEST_F(ServerTest, AdmissionBudgetRejectsOversizedJobs) {
  ServerConfig config = BaseConfig();
  config.admission_budget_bytes = 1 << 20;
  config.default_job_budget_bytes = 256 << 10;
  auto srv = DdpServer::Start(config);
  ASSERT_TRUE(srv.ok());
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok());

  // A job demanding more than the whole server budget bounces immediately,
  // with the arithmetic in the reason.
  JobParams heavy = BaseParams();
  heavy.memory_budget_bytes = 2 << 20;
  auto submitted = (*client)->Submit(Submission(heavy));
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(submitted->state, static_cast<uint8_t>(JobState::kRejected));
  EXPECT_NE(submitted->detail.find("admission budget exceeded"),
            std::string::npos)
      << submitted->detail;

  // The budget is about admitted jobs, not history: a fitting job is
  // admitted afterwards and completes.
  auto ok_job = (*client)->Submit(Submission(BaseParams()));
  ASSERT_TRUE(ok_job.ok());
  ASSERT_NE(ok_job->state, static_cast<uint8_t>(JobState::kRejected));
  auto done = (*client)->WaitForResult(ok_job->job_id, 60.0);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, static_cast<uint8_t>(JobState::kDone));
}

TEST_F(ServerTest, IdenticalInFlightSubmissionsCoalesce) {
  ServerConfig config = BaseConfig();
  config.scheduler_threads = 1;
  auto srv = DdpServer::Start(config);
  ASSERT_TRUE(srv.ok());
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok());

  // Two identical submissions back to back: the second must either coalesce
  // onto the first (same job id while in flight) or, if the first already
  // finished, hit the result cache — never run twice.
  JobParams params = BaseParams();
  params.map_failure_rate = 0.3;  // seeded retries keep the first in flight
  auto first = (*client)->Submit(Submission(params));
  ASSERT_TRUE(first.ok());
  ASSERT_NE(first->state, static_cast<uint8_t>(JobState::kRejected));
  auto second = (*client)->Submit(Submission(params));
  ASSERT_TRUE(second.ok());
  const bool coalesced = second->job_id == first->job_id;
  const bool cache_hit = second->from_result_cache != 0;
  EXPECT_TRUE(coalesced || cache_hit);

  auto done = (*client)->WaitForResult(first->job_id, 120.0);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, static_cast<uint8_t>(JobState::kDone));
}

// ---------------------------------------------------- cancel + disconnect

TEST_F(ServerTest, CancelQueuedOrRunningJobReachesTerminalState) {
  ServerConfig config = BaseConfig();
  config.scheduler_threads = 1;
  auto srv = DdpServer::Start(config);
  ASSERT_TRUE(srv.ok());
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok());

  // Job A occupies the single scheduler slot (seeded retries slow it
  // down); job B waits behind it and is cancelled.
  JobParams slow = BaseParams();
  slow.map_failure_rate = 0.3;
  auto a = (*client)->Submit(Submission(slow));
  ASSERT_TRUE(a.ok());
  ASSERT_NE(a->state, static_cast<uint8_t>(JobState::kRejected));
  JobParams other = BaseParams();
  other.k = 4;
  auto b = (*client)->Submit(Submission(other));
  ASSERT_TRUE(b.ok());
  ASSERT_NE(b->state, static_cast<uint8_t>(JobState::kRejected));

  auto cancelled = (*client)->Cancel(b->job_id);
  ASSERT_TRUE(cancelled.ok());
  // Cancel is cooperative: immediate for a queued job, at the next
  // MapReduce boundary for a running one — and if the job beat the cancel
  // to the finish line it is simply done.
  auto b_final = (*client)->WaitForResult(b->job_id, 120.0);
  ASSERT_TRUE(b_final.ok());
  EXPECT_TRUE(
      b_final->state == static_cast<uint8_t>(JobState::kCancelled) ||
      b_final->state == static_cast<uint8_t>(JobState::kDone))
      << unsigned{b_final->state};

  // The cancel never harms unrelated work: A still completes, and the
  // server admits new jobs afterwards.
  auto a_final = (*client)->WaitForResult(a->job_id, 120.0);
  ASSERT_TRUE(a_final.ok());
  EXPECT_EQ(a_final->state, static_cast<uint8_t>(JobState::kDone));

  // A cancelled job's checkpoints survive, so resubmitting the identical
  // job resumes (or serves the cache when it finished) and completes.
  auto again = (*client)->Submit(Submission(other));
  ASSERT_TRUE(again.ok());
  ASSERT_NE(again->state, static_cast<uint8_t>(JobState::kRejected));
  auto again_done = (*client)->WaitForResult(again->job_id, 120.0);
  ASSERT_TRUE(again_done.ok());
  EXPECT_EQ(again_done->state, static_cast<uint8_t>(JobState::kDone));

  // Cancelling a finished job is a no-op reporting the terminal state.
  auto noop = (*client)->Cancel(a->job_id);
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop->state, static_cast<uint8_t>(JobState::kDone));
}

TEST_F(ServerTest, ClientDisconnectMidJobLeavesServerServing) {
  auto srv = DdpServer::Start(BaseConfig());
  ASSERT_TRUE(srv.ok());

  uint64_t job_id = 0;
  {
    auto doomed = Connect(**srv);
    ASSERT_TRUE(doomed.ok());
    JobParams params = BaseParams();
    params.map_failure_rate = 0.3;  // keep it in flight past the disconnect
    auto submitted = (*doomed)->Submit(Submission(params));
    ASSERT_TRUE(submitted.ok());
    ASSERT_NE(submitted->state, static_cast<uint8_t>(JobState::kRejected));
    job_id = submitted->job_id;
  }  // connection closes with the job queued or running

  // The job is not tied to the connection: a fresh client sees it through
  // to completion and the server keeps serving.
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok());
  auto done = (*client)->WaitForResult(job_id, 120.0);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, static_cast<uint8_t>(JobState::kDone));
}

// ----------------------------------------------------------------- drain

TEST_F(ServerTest, GracefulShutdownDrainsSubmittedJobs) {
  auto srv = DdpServer::Start(BaseConfig());
  ASSERT_TRUE(srv.ok());
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok());

  auto submitted = (*client)->Submit(Submission(BaseParams()));
  ASSERT_TRUE(submitted.ok());
  ASSERT_NE(submitted->state, static_cast<uint8_t>(JobState::kRejected));

  // Drain over the wire (the admin path ddp_client shutdown uses).
  auto ack = (*client)->RequestServerShutdown();
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE((*srv)->draining());

  // New submissions bounce during the drain.
  JobParams late = BaseParams();
  late.k = 3;
  auto refused = (*client)->Submit(Submission(late));
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->state, static_cast<uint8_t>(JobState::kRejected));
  EXPECT_NE(refused->detail.find("draining"), std::string::npos);

  // The in-flight job still completes; clients can poll through the drain.
  auto done = (*client)->WaitForResult(submitted->job_id, 120.0);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, static_cast<uint8_t>(JobState::kDone));

  (*srv)->WaitShutdown();  // drained: returns without cancelling anything
}

TEST_F(ServerTest, DestructorDrainsWithoutExplicitShutdown) {
  auto srv = DdpServer::Start(BaseConfig());
  ASSERT_TRUE(srv.ok());
  auto client = Connect(**srv);
  ASSERT_TRUE(client.ok());
  auto submitted = (*client)->Submit(Submission(BaseParams()));
  ASSERT_TRUE(submitted.ok());
  ASSERT_NE(submitted->state, static_cast<uint8_t>(JobState::kRejected));
  srv->reset();  // destructor: request drain, wait, join — must not hang
}

// --------------------------------------------------------------- caches

TEST(DatasetCacheTest, EvictsLeastRecentlyUsedButKeepsOne) {
  const std::string dir =
      (fs::temp_directory_path() / "ddp_dataset_cache_test").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto a = gen::S2Like(1, 150);
  auto b = gen::S2Like(2, 150);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(WriteCsvFile(dir + "/a.csv", *a).ok());
  ASSERT_TRUE(WriteCsvFile(dir + "/b.csv", *b).ok());

  DatasetCache cache(/*max_bytes=*/1);  // everything oversized: LRU of one
  auto first = cache.Acquire(dir + "/a.csv", "digest-a");
  ASSERT_TRUE(first.ok());
  EXPECT_GT(cache.resident_bytes(), 0u);
  auto second = cache.Acquire(dir + "/b.csv", "digest-b");
  ASSERT_TRUE(second.ok());
  // a evicted, b resident; the handed-out shared_ptr keeps a alive.
  EXPECT_EQ((*first)->size(), 150u);
  auto again = cache.Acquire(dir + "/b.csv", "digest-b");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), second->get());  // same resident entry
  fs::remove_all(dir);
}

TEST(ResultCacheTest, LruBoundAndDisabledModes) {
  ResultCache cache(/*max_entries=*/2);
  std::string out;
  EXPECT_FALSE(cache.Get("k1", &out));
  cache.Put("k1", "v1");
  cache.Put("k2", "v2");
  ASSERT_TRUE(cache.Get("k1", &out));  // refreshes k1
  EXPECT_EQ(out, "v1");
  cache.Put("k3", "v3");  // evicts k2, the least recently used
  EXPECT_FALSE(cache.Get("k2", &out));
  EXPECT_TRUE(cache.Get("k1", &out));
  EXPECT_TRUE(cache.Get("k3", &out));
  EXPECT_EQ(cache.size(), 2u);

  ResultCache disabled(/*max_entries=*/0);
  disabled.Put("k", "v");
  EXPECT_EQ(disabled.size(), 0u);
  EXPECT_FALSE(disabled.Get("k", &out));
}

}  // namespace
}  // namespace server
}  // namespace ddp

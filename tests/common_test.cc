#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/host_port.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace ddp {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::IoError("disk");
  Status b = a;          // copy construct
  Status c;
  c = a;                 // copy assign
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(b.message(), "disk");
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status a = Status::Internal("boom");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    DDP_RETURN_NOT_OK(Status::NotFound("inner"));
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(fails().IsNotFound());
  auto succeeds = []() -> Status {
    DDP_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(succeeds().IsInternal());
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "Invalid argument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IO error");
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, OkStatusConstructionBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveValueOut) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("too big");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    DDP_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_TRUE(outer(true).status().IsOutOfRange());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

// ---------------------------------------------------------------- Serde

TEST(SerdeTest, VarintRoundTrip) {
  BufferWriter w;
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1u << 20,
                                  0xffffffffffffffffULL};
  for (uint64_t v : values) w.PutVarint64(v);
  BufferReader r(w.data());
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(r.GetVarint64(&got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, VarintEncodingIsCompactForSmallValues) {
  BufferWriter w;
  w.PutVarint64(5);
  EXPECT_EQ(w.size(), 1u);
  BufferWriter w2;
  w2.PutVarint64(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(SerdeTest, SignedVarintRoundTrip) {
  BufferWriter w;
  std::vector<int64_t> values = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t v : values) w.PutSignedVarint64(v);
  BufferReader r(w.data());
  for (int64_t v : values) {
    int64_t got = 0;
    ASSERT_TRUE(r.GetSignedVarint64(&got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(SerdeTest, DoubleRoundTripIncludingSpecials) {
  BufferWriter w;
  std::vector<double> values = {0.0, -0.0, 3.14159, -1e300,
                                std::numeric_limits<double>::infinity(),
                                std::numeric_limits<double>::denorm_min()};
  for (double v : values) w.PutDouble(v);
  BufferReader r(w.data());
  for (double v : values) {
    double got = 0.0;
    ASSERT_TRUE(r.GetDouble(&got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(SerdeTest, StringRoundTrip) {
  BufferWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string(1000, 'x'));
  BufferReader r(w.data());
  std::string s;
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s.size(), 1000u);
}

TEST(SerdeTest, TruncatedBufferIsIoError) {
  BufferWriter w;
  w.PutDouble(1.0);
  BufferReader r(w.data().data(), 3);  // cut mid-double
  double d;
  EXPECT_TRUE(r.GetDouble(&d).IsIoError());
}

TEST(SerdeTest, TruncatedVarintIsIoError) {
  std::string buf = "\xff";  // continuation bit set, no next byte
  BufferReader r(buf);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint64(&v).IsIoError());
}

TEST(SerdeTest, OverlongVarintIsIoError) {
  std::string buf(11, '\xff');  // > 10 continuation bytes
  BufferReader r(buf);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint64(&v).IsIoError());
}

TEST(SerdeTest, TypedSerdeVectorPairRoundTrip) {
  using T = std::vector<std::pair<uint32_t, double>>;
  T value = {{1, 0.5}, {7, -2.0}, {1000000, 1e-10}};
  BufferWriter w;
  Serde<T>::Write(&w, value);
  BufferReader r(w.data());
  T got{};
  ASSERT_TRUE(Serde<T>::Read(&r, &got).ok());
  EXPECT_EQ(got, value);
}

TEST(SerdeTest, SerializedSizeMatchesWrite) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  BufferWriter w;
  Serde<std::vector<double>>::Write(&w, v);
  EXPECT_EQ(SerializedSize(v), w.size());
}

TEST(SerdeTest, ExternalBufferAppends) {
  std::string backing = "prefix";
  BufferWriter w(&backing);
  w.PutVarint64(1);
  EXPECT_EQ(backing.size(), 7u);
  EXPECT_EQ(backing.substr(0, 6), "prefix");
}

// ---------------------------------------------------------------- Random

TEST(RandomTest, SplitSeedIsDeterministicAndSpread) {
  EXPECT_EQ(SplitSeed(1, 0), SplitSeed(1, 0));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 100; ++i) seen.insert(SplitSeed(123, i));
  EXPECT_EQ(seen.size(), 100u);
}

TEST(RandomTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RandomTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RandomTest, SameSeedSameSequence) {
  Rng a(99), b(99);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(RandomTest, GaussianVectorHasRequestedDim) {
  Rng rng(1);
  EXPECT_EQ(rng.GaussianVector(17).size(), 17u);
}

TEST(RandomTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(5);
  std::vector<size_t> s = SampleWithoutReplacement(100, 30, &rng);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RandomTest, SampleWithoutReplacementFullRange) {
  Rng rng(5);
  std::vector<size_t> s = SampleWithoutReplacement(10, 10, &rng);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(std::memory_order_relaxed), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(std::memory_order_relaxed), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(std::memory_order_relaxed), 45);
}

TEST(ThreadPoolTest, ManySmallParallelForsBackToBack) {
  // Exercises the wait/notify protocol under rapid reuse.
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&](size_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(std::memory_order_relaxed), 200ull * (16 * 17 / 2));
}

TEST(ThreadPoolTest, SubmitFromManyThreads) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < 50; ++i) {
        pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(count.load(std::memory_order_relaxed), 200);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
}

TEST(ThreadPoolTest, DefaultParallelismAtLeastOne) {
  EXPECT_GE(DefaultParallelism(), 1u);
}

// ------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotonic) {
  Stopwatch sw;
  double a = sw.ElapsedSeconds();
  double b = sw.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 0.005);
}

// --------------------------------------------------------------- Logging

TEST(LoggingTest, LevelGate) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  DDP_LOG(Info) << "suppressed";
  SetLogLevel(old);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  DDP_CHECK(1 + 1 == 2) << "never shown";
  DDP_CHECK_EQ(4, 4);
  DDP_CHECK_LT(1, 2);
  DDP_CHECK_GE(2, 2);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ DDP_CHECK(false) << "boom"; }, "Check failed");
}

TEST(HostPortTest, ParsesNumericEndpoints) {
  auto hp = ParseHostPort("127.0.0.1:8080");
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->host, "127.0.0.1");
  EXPECT_EQ(hp->port, 8080);
  EXPECT_EQ(hp->ToString(), "127.0.0.1:8080");

  // Port 0 is valid: listeners use it to request an ephemeral port.
  hp = ParseHostPort("0.0.0.0:0");
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->host, "0.0.0.0");
  EXPECT_EQ(hp->port, 0);

  hp = ParseHostPort("255.255.255.255:65535");
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->port, 65535);

  // host:0 with a non-wildcard host is equally valid — ddp_cli's
  // --remote-listen and ddp_server's --remote-listen both default to it.
  hp = ParseHostPort("127.0.0.1:0");
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->host, "127.0.0.1");
  EXPECT_EQ(hp->port, 0);
}

TEST(HostPortTest, RejectsMalformedEndpoints) {
  const char* bad[] = {
      "",                       // empty
      "127.0.0.1",              // no port
      "127.0.0.1:",             // empty port
      ":8080",                  // empty host
      "localhost:8080",         // names are not numeric IPv4
      "127.0.0:8080",           // three octets
      "127.0.0.1.5:8080",       // five octets
      "127.0.0.256:8080",       // octet > 255
      "127.0.0.1:65536",        // port > 65535
      "127.0.0.1:99999999999",  // port overflow
      "127.0.0.1:8080x",        // trailing garbage
      "127.0.0.1:0x",           // trailing garbage after port 0
      "127.0.0.1:8080 ",        // trailing space
      "127.0.0.1:8080/path",    // trailing path
      "127.0.0.1:8080\n",       // trailing newline
      "127.0..1:8080",          // empty octet
      "127.0.0.1:80:80",        // two colons
      " 127.0.0.1:8080",        // leading space
      "127.0.0.1:-1",           // negative port
      "127.0.0.1:+80",          // explicit sign
      "127.0.0.1.:80",          // trailing dot in host
  };
  for (const char* spec : bad) {
    auto hp = ParseHostPort(spec);
    EXPECT_FALSE(hp.ok()) << "accepted '" << spec << "'";
    if (!hp.ok()) {
      EXPECT_EQ(hp.status().code(), StatusCode::kInvalidArgument) << spec;
    }
  }
}

}  // namespace
}  // namespace ddp

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "common/random.h"

#include "core/assignment.h"
#include "core/decision_graph.h"
#include "core/halo.h"
#include "core/kernel.h"
#include "core/sequential_dp.h"
#include "dataset/kdtree.h"
#include "lsh/hash_group.h"
#include "dataset/generators.h"
#include "ddp/eddpc.h"
#include "ddp/lsh_ddp.h"
#include "eval/metrics.h"
#include "eval/tau.h"

namespace ddp {
namespace {

mr::Options FastMr() {
  mr::Options o;
  o.num_workers = 2;
  o.num_partitions = 8;
  return o;
}

// ---------------------------------------------------------------- Kernel

TEST(KernelTest, ContributionKnownValues) {
  EXPECT_DOUBLE_EQ(GaussianKernelContribution(0.0, 1.0), 1.0);
  EXPECT_NEAR(GaussianKernelContribution(1.0, 1.0), std::exp(-1.0), 1e-15);
  EXPECT_NEAR(GaussianKernelContribution(2.0, 1.0), std::exp(-4.0), 1e-15);
  // Truncated at 3 d_c by definition.
  EXPECT_DOUBLE_EQ(GaussianKernelContribution(3.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(GaussianKernelContribution(100.0, 1.0), 0.0);
}

TEST(KernelTest, QuantizationRoundsAndSaturates) {
  EXPECT_EQ(QuantizeDensity(0.0), 0u);
  EXPECT_EQ(QuantizeDensity(1.0), static_cast<uint32_t>(kDensityQuantScale));
  EXPECT_EQ(QuantizeDensity(1.0 / kDensityQuantScale), 1u);
  EXPECT_EQ(QuantizeDensity(1e18), 4294967295u);  // saturation
}

TEST(KernelTest, ExactRhoGaussianOnTwoPoints) {
  Dataset ds(1);
  ds.Add(std::vector<double>{0.0});
  ds.Add(std::vector<double>{1.0});
  CountingMetric metric;
  SequentialDpOptions options;
  options.kernel = DensityKernel::kGaussian;
  auto rho = ComputeExactRho(ds, 2.0, metric, options);
  ASSERT_TRUE(rho.ok());
  uint32_t expected = QuantizeDensity(std::exp(-0.25));  // (1/2)^2
  EXPECT_EQ((*rho)[0], expected);
  EXPECT_EQ((*rho)[1], expected);
}

TEST(KernelTest, GaussianBreaksIntegerTies) {
  // With the cutoff kernel many points share integer rho; soft densities
  // should produce strictly more distinct values on continuous data.
  auto ds = gen::GaussianMixture(300, 2, 3, 30.0, 2.0, 5);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  SequentialDpOptions cutoff_opts, gauss_opts;
  gauss_opts.kernel = DensityKernel::kGaussian;
  auto hard = ComputeExactRho(*ds, 2.0, metric, cutoff_opts);
  auto soft = ComputeExactRho(*ds, 2.0, metric, gauss_opts);
  ASSERT_TRUE(hard.ok() && soft.ok());
  std::set<uint32_t> hard_distinct(hard->begin(), hard->end());
  std::set<uint32_t> soft_distinct(soft->begin(), soft->end());
  EXPECT_GT(soft_distinct.size(), hard_distinct.size());
}

TEST(KernelTest, TriangleFilterExactForGaussianKernel) {
  auto ds = gen::GaussianMixture(250, 3, 4, 200.0, 1.5, 7);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  SequentialDpOptions plain, filtered;
  plain.kernel = filtered.kernel = DensityKernel::kGaussian;
  filtered.use_triangle_filter = true;
  auto a = ComputeExactRho(*ds, 2.0, metric, plain);
  auto b = ComputeExactRho(*ds, 2.0, metric, filtered);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);  // truncation is part of the definition, so bit-equal
}

TEST(KernelTest, LocalGaussianRhoUnderestimates) {
  auto ds = gen::GaussianMixture(200, 2, 2, 20.0, 2.0, 9);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  SequentialDpOptions gauss;
  gauss.kernel = DensityKernel::kGaussian;
  auto exact = ComputeExactRho(*ds, 2.0, metric, gauss);
  ASSERT_TRUE(exact.ok());
  std::vector<PointId> subset;
  for (PointId i = 0; i < 120; ++i) subset.push_back(i);
  LocalDpResult local =
      ComputeLocalRho(*ds, subset, 2.0, metric, DensityKernel::kGaussian);
  for (size_t k = 0; k < subset.size(); ++k) {
    // Quantization happens after accumulation on both sides; the subset sum
    // of non-negative contributions cannot exceed the full sum, so the
    // quantized values obey <= up to the half-step rounding.
    EXPECT_LE(local.rho[k], (*exact)[subset[k]] + 1);
  }
}

TEST(KernelTest, LshDdpGaussianKernelClustersWell) {
  auto ds = gen::GaussianMixture(400, 2, 4, 300.0, 2.0, 11);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  LshDdp::Params params;
  params.kernel = DensityKernel::kGaussian;
  LshDdp algo(params);
  auto scores = algo.ComputeScores(*ds, 3.0, metric, FastMr(), nullptr);
  ASSERT_TRUE(scores.ok());
  DecisionGraph graph = DecisionGraph::FromScores(*scores);
  auto clusters =
      AssignClusters(*ds, *scores, graph.SelectTopK(4), metric);
  ASSERT_TRUE(clusters.ok());
  auto ari = eval::AdjustedRandIndex(clusters->assignment, ds->labels());
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.95);
}

TEST(KernelTest, GaussianAndCutoffAgreeOnSeparatedBlobs) {
  auto ds = gen::GaussianMixture(300, 2, 3, 400.0, 2.0, 13);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  SequentialDpOptions gauss;
  gauss.kernel = DensityKernel::kGaussian;
  auto hard = ComputeExactDp(*ds, 3.0, metric);
  auto soft = ComputeExactDp(*ds, 3.0, metric, gauss);
  ASSERT_TRUE(hard.ok() && soft.ok());
  auto cluster = [&](const DpScores& scores) {
    DecisionGraph graph = DecisionGraph::FromScores(scores);
    return std::move(AssignClusters(*ds, scores, graph.SelectTopK(3), metric))
        .ValueOrDie()
        .assignment;
  };
  auto agreement = eval::AdjustedRandIndex(cluster(*hard), cluster(*soft));
  ASSERT_TRUE(agreement.ok());
  EXPECT_GT(*agreement, 0.95);
}

// ------------------------------------------------------------------ Halo

TEST(HaloTest, NoForeignNeighborsMeansNoHalo) {
  // Two far-apart blobs: no cross-cluster pair within d_c, so border
  // densities stay 0 and nothing is halo.
  auto ds = gen::GaussianMixture(100, 2, 2, 1000.0, 1.0, 15);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto scores = ComputeExactDp(*ds, 2.0, metric);
  ASSERT_TRUE(scores.ok());
  DecisionGraph graph = DecisionGraph::FromScores(*scores);
  auto clusters = AssignClusters(*ds, *scores, graph.SelectTopK(2), metric);
  ASSERT_TRUE(clusters.ok());
  auto halo = ComputeHalo(*ds, *scores, *clusters, 2.0, metric);
  ASSERT_TRUE(halo.ok());
  for (double b : halo->border_density) EXPECT_EQ(b, 0.0);
  for (bool h : halo->halo) EXPECT_FALSE(h);
}

TEST(HaloTest, TouchingClustersProduceHalo) {
  // Two overlapping blobs: border points (low rho near the boundary) should
  // be flagged.
  Dataset ds(1);
  Rng rng(17);
  for (int i = 0; i < 150; ++i) {
    ds.Add(std::vector<double>{rng.Gaussian(0.0, 1.0)}, 0);
  }
  for (int i = 0; i < 150; ++i) {
    ds.Add(std::vector<double>{rng.Gaussian(5.0, 1.0)}, 1);
  }
  CountingMetric metric;
  auto scores = ComputeExactDp(ds, 0.5, metric);
  ASSERT_TRUE(scores.ok());
  DecisionGraph graph = DecisionGraph::FromScores(*scores);
  auto clusters = AssignClusters(ds, *scores, graph.SelectTopK(2), metric);
  ASSERT_TRUE(clusters.ok());
  auto halo = ComputeHalo(ds, *scores, *clusters, 0.5, metric);
  ASSERT_TRUE(halo.ok());
  size_t halo_count = 0;
  for (bool h : halo->halo) halo_count += h ? 1 : 0;
  EXPECT_GT(halo_count, 0u);
  EXPECT_LT(halo_count, ds.size());  // cores survive
  // Cluster cores (the peaks themselves) must not be halo.
  for (PointId peak : clusters->peaks) EXPECT_FALSE(halo->halo[peak]);
}

TEST(HaloTest, UnassignedPointsAreAlwaysHalo) {
  Dataset ds(1);
  for (double x : {0.0, 1.0, 2.0}) ds.Add(std::vector<double>{x});
  DpScores scores;
  scores.Resize(3);
  scores.rho = {3, 2, 1};
  ClusterResult clusters;
  clusters.peaks = {0};
  clusters.assignment = {0, 0, -1};
  CountingMetric metric;
  auto halo = ComputeHalo(ds, scores, clusters, 1.5, metric);
  ASSERT_TRUE(halo.ok());
  EXPECT_TRUE(halo->halo[2]);
}

TEST(HaloTest, Validation) {
  Dataset ds(1);
  ds.Add(std::vector<double>{0.0});
  DpScores scores;
  scores.Resize(1);
  ClusterResult clusters;
  clusters.assignment = {0};
  CountingMetric metric;
  // No peaks.
  EXPECT_FALSE(ComputeHalo(ds, scores, clusters, 1.0, metric).ok());
  clusters.peaks = {0};
  // Bad d_c.
  EXPECT_FALSE(ComputeHalo(ds, scores, clusters, 0.0, metric).ok());
  // Size mismatch.
  DpScores bad;
  bad.Resize(2);
  EXPECT_FALSE(ComputeHalo(ds, bad, clusters, 1.0, metric).ok());
}

// ---------------------------------------------------------------- KdTree

TEST(KdTreeTest, CountMatchesBruteForce) {
  auto ds = gen::GaussianMixture(400, 3, 4, 30.0, 2.0, 41);
  ASSERT_TRUE(ds.ok());
  auto tree = KdTree::Build(*ds);
  ASSERT_TRUE(tree.ok());
  CountingMetric metric;
  for (double radius : {0.5, 2.0, 10.0}) {
    for (PointId i = 0; i < 50; ++i) {
      size_t brute = 0;
      for (size_t j = 0; j < ds->size(); ++j) {
        if (static_cast<PointId>(j) == i) continue;
        if (Euclidean(ds->point(i), ds->point(static_cast<PointId>(j))) <
            radius) {
          ++brute;
        }
      }
      EXPECT_EQ(tree->CountWithin(ds->point(i), radius, i, metric), brute)
          << "i=" << i << " r=" << radius;
    }
  }
}

TEST(KdTreeTest, FindMatchesBruteForceSet) {
  auto ds = gen::GaussianMixture(300, 2, 3, 20.0, 2.0, 43);
  ASSERT_TRUE(ds.ok());
  auto tree = KdTree::Build(*ds, /*leaf_size=*/4);
  ASSERT_TRUE(tree.ok());
  CountingMetric metric;
  for (PointId i = 0; i < 20; ++i) {
    std::vector<PointId> found = tree->FindWithin(ds->point(i), 3.0, i, metric);
    std::set<PointId> found_set(found.begin(), found.end());
    EXPECT_EQ(found_set.size(), found.size());  // no duplicates
    for (size_t j = 0; j < ds->size(); ++j) {
      if (static_cast<PointId>(j) == i) continue;
      bool within =
          Euclidean(ds->point(i), ds->point(static_cast<PointId>(j))) < 3.0;
      EXPECT_EQ(found_set.count(static_cast<PointId>(j)) > 0, within);
    }
  }
}

TEST(KdTreeTest, Validation) {
  Dataset empty(2);
  EXPECT_FALSE(KdTree::Build(empty).ok());
  Dataset one(1);
  one.Add(std::vector<double>{0.0});
  EXPECT_FALSE(KdTree::Build(one, 0).ok());
  EXPECT_TRUE(KdTree::Build(one, 1).ok());
}

TEST(KdTreeTest, DuplicatePointsHandled) {
  Dataset ds(2);
  for (int i = 0; i < 40; ++i) ds.Add(std::vector<double>{1.0, 2.0});
  auto tree = KdTree::Build(ds, 4);
  ASSERT_TRUE(tree.ok());
  CountingMetric metric;
  EXPECT_EQ(tree->CountWithin(ds.point(0), 0.5, 0, metric), 39u);
}

TEST(KdTreeTest, RhoPathIdenticalAndCheaperInLowDim) {
  auto ds = gen::SpatialLike(47, 2000);
  ASSERT_TRUE(ds.ok());
  const double dc = 10.0;
  DistanceCounter plain_counter, tree_counter;
  SequentialDpOptions plain, with_tree;
  with_tree.use_kdtree_rho = true;
  auto a = ComputeExactRho(*ds, dc, CountingMetric(&plain_counter), plain);
  auto b = ComputeExactRho(*ds, dc, CountingMetric(&tree_counter), with_tree);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_LT(tree_counter.value(), plain_counter.value() / 2);
}

TEST(KdTreeTest, GaussianKernelRhoPathIdentical) {
  auto ds = gen::GaussianMixture(300, 3, 3, 60.0, 2.0, 53);
  ASSERT_TRUE(ds.ok());
  SequentialDpOptions plain, with_tree;
  plain.kernel = with_tree.kernel = DensityKernel::kGaussian;
  with_tree.use_kdtree_rho = true;
  CountingMetric metric;
  auto a = ComputeExactRho(*ds, 2.0, metric, plain);
  auto b = ComputeExactRho(*ds, 2.0, metric, with_tree);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

// ---------------------------------------------------------- Multi-probe

TEST(MultiProbeTest, KeyStructure) {
  Rng rng(3);
  lsh::HashGroup g = lsh::HashGroup::Random(4, 3, 2.0, &rng);
  std::vector<double> p = rng.GaussianVector(4);
  auto keys0 = g.KeysWithProbes(p, 0);
  ASSERT_EQ(keys0.size(), 1u);
  EXPECT_EQ(keys0[0], g.Key(p));
  auto keys2 = g.KeysWithProbes(p, 2);
  ASSERT_EQ(keys2.size(), 3u);
  for (size_t q = 1; q < keys2.size(); ++q) {
    // Each probe differs from the base in exactly one coordinate, by +-1.
    size_t diffs = 0;
    for (size_t t = 0; t < 3; ++t) {
      if (keys2[q][t] != keys2[0][t]) {
        ++diffs;
        EXPECT_EQ(std::abs(keys2[q][t] - keys2[0][t]), 1);
      }
    }
    EXPECT_EQ(diffs, 1u);
  }
  // Probe count clamps at 2*pi.
  EXPECT_EQ(g.KeysWithProbes(p, 100).size(), 1u + 6u);
}

TEST(MultiProbeTest, ImprovesTau2AtFixedLayouts) {
  auto ds = gen::BigCrossLike(61, 800);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto dc_result = ChooseCutoff(*ds, metric);
  ASSERT_TRUE(dc_result.ok());
  auto exact = ComputeExactRho(*ds, *dc_result, metric);
  ASSERT_TRUE(exact.ok());
  auto tau2_with_probes = [&](size_t probes) {
    LshDdp::Params params;
    params.accuracy = 0.6;  // low accuracy: room for probing to help
    params.lsh.num_layouts = 3;
    params.lsh.pi = 3;
    params.probes = probes;
    LshDdp algo(params);
    auto scores = algo.ComputeScores(*ds, *dc_result, metric, FastMr(), nullptr);
    EXPECT_TRUE(scores.ok());
    for (size_t i = 0; i < ds->size(); ++i) {
      EXPECT_LE(scores->rho[i], (*exact)[i]);  // invariant holds with probes
    }
    return std::move(eval::Tau2(scores->rho, *exact)).ValueOrDie();
  };
  double base = tau2_with_probes(0);
  double probed = tau2_with_probes(2);
  EXPECT_GE(probed, base - 1e-12);
}

TEST(MultiProbeTest, ProbesIncreaseShuffleProportionally) {
  auto ds = gen::KddLike(67, 400);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto run_with = [&](size_t probes) {
    LshDdp::Params params;
    params.probes = probes;
    LshDdp algo(params);
    mr::RunStats stats;
    EXPECT_TRUE(algo.ComputeScores(*ds, 10.0, metric, FastMr(), &stats).ok());
    return stats.jobs[0].shuffle_records;
  };
  uint64_t base = run_with(0);
  uint64_t probed = run_with(1);
  EXPECT_EQ(probed, 2 * base);  // one extra bucket per layout
}

// --------------------------------------------- Bucket splitting (skew)

TEST(BucketSplitTest, CapReducesDistanceWork) {
  auto ds = gen::GaussianMixture(600, 4, 2, 20.0, 4.0, 23);  // fat buckets
  ASSERT_TRUE(ds.ok());
  auto cost_with_cap = [&](size_t cap) {
    LshDdp::Params params;
    params.max_bucket_size = cap;
    LshDdp algo(params);
    DistanceCounter counter;
    EXPECT_TRUE(algo.ComputeScores(*ds, 2.0, CountingMetric(&counter),
                                   FastMr(), nullptr)
                    .ok());
    return counter.value();
  };
  uint64_t uncapped = cost_with_cap(0);
  uint64_t capped = cost_with_cap(40);
  EXPECT_LT(capped, uncapped);
}

TEST(BucketSplitTest, RhoStillUnderestimates) {
  auto ds = gen::GaussianMixture(400, 3, 3, 30.0, 3.0, 29);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto exact = ComputeExactRho(*ds, 2.0, metric);
  ASSERT_TRUE(exact.ok());
  LshDdp::Params params;
  params.max_bucket_size = 30;
  LshDdp algo(params);
  auto approx = algo.ComputeScores(*ds, 2.0, metric, FastMr(), nullptr);
  ASSERT_TRUE(approx.ok());
  for (size_t i = 0; i < ds->size(); ++i) {
    EXPECT_LE(approx->rho[i], (*exact)[i]);
  }
}

TEST(BucketSplitTest, DeterministicAndStillClusters) {
  auto ds = gen::GaussianMixture(500, 2, 4, 400.0, 2.0, 31);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  LshDdp::Params params;
  params.max_bucket_size = 50;
  LshDdp a(params), b(params);
  auto ra = a.ComputeScores(*ds, 4.0, metric, FastMr(), nullptr);
  auto rb = b.ComputeScores(*ds, 4.0, metric, FastMr(), nullptr);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->rho, rb->rho);
  EXPECT_EQ(ra->delta, rb->delta);
  DecisionGraph graph = DecisionGraph::FromScores(*ra);
  auto clusters = AssignClusters(*ds, *ra, graph.SelectTopK(4), metric);
  ASSERT_TRUE(clusters.ok());
  auto ari = eval::AdjustedRandIndex(clusters->assignment, ds->labels());
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.9);
}

// ------------------------------------------- EDDPC published-filter mode

TEST(EddpcVariantTest, PublishedFilterIsStillExact) {
  auto ds = gen::GaussianMixture(300, 3, 4, 60.0, 2.0, 19);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  const double dc = 3.0;
  auto exact = ComputeExactDp(*ds, dc, metric);
  ASSERT_TRUE(exact.ok());
  Eddpc::Params params;
  params.use_max_rho_filter = false;
  Eddpc algo(params);
  auto scores = algo.ComputeScores(*ds, dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->rho, exact->rho);
  EXPECT_EQ(scores->delta, exact->delta);
  EXPECT_EQ(scores->upslope, exact->upslope);
}

TEST(EddpcVariantTest, MaxRhoFilterReducesShuffleAndDistances) {
  auto ds = gen::KddLike(21, 600);
  ASSERT_TRUE(ds.ok());
  CountingMetric unused;
  auto dc = ChooseCutoff(*ds, unused);
  ASSERT_TRUE(dc.ok());
  auto run = [&](bool filter) {
    Eddpc::Params params;
    params.use_max_rho_filter = filter;
    Eddpc algo(params);
    DistanceCounter counter;
    mr::RunStats stats;
    EXPECT_TRUE(algo.ComputeScores(*ds, *dc, CountingMetric(&counter),
                                   FastMr(), &stats)
                    .ok());
    return std::pair<uint64_t, uint64_t>{stats.TotalShuffleBytes(),
                                         counter.value()};
  };
  auto [shuffle_off, dist_off] = run(false);
  auto [shuffle_on, dist_on] = run(true);
  EXPECT_LE(shuffle_on, shuffle_off);
  EXPECT_LE(dist_on, dist_off);
}

}  // namespace
}  // namespace ddp

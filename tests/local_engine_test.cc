#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <vector>

#include "core/local_dp.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/eddpc.h"
#include "ddp/lsh_ddp.h"

namespace ddp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

constexpr LocalDpBackend kAllBackends[] = {LocalDpBackend::kBruteForce,
                                           LocalDpBackend::kKdTree,
                                           LocalDpBackend::kTriangleFilter};

mr::Options FastMr() {
  mr::Options o;
  o.num_workers = 2;
  o.num_partitions = 8;
  return o;
}

LocalDpEngine EngineWith(LocalDpBackend backend, size_t parallel_min = 4096) {
  LocalDpEngineOptions options;
  options.backend = backend;
  options.parallel_min_group = parallel_min;
  return LocalDpEngine(options);
}

// ------------------------------------------------- Backend name parsing

TEST(LocalDpBackendTest, ParseRoundTrip) {
  for (LocalDpBackend b : kAllBackends) {
    auto parsed = ParseLocalDpBackend(LocalDpBackendName(b));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, b);
  }
  auto a = ParseLocalDpBackend("auto");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, LocalDpBackend::kAuto);
  EXPECT_FALSE(ParseLocalDpBackend("quadtree").ok());
}

TEST(LocalDpBackendTest, AutoResolvesByGroupSizeAndDim) {
  LocalDpEngine engine;  // defaults: kd >= 256 & dim <= 16, triangle >= 512
  EXPECT_EQ(engine.Resolve(10, 2), LocalDpBackend::kBruteForce);
  EXPECT_EQ(engine.Resolve(1000, 2), LocalDpBackend::kKdTree);
  EXPECT_EQ(engine.Resolve(1000, 300), LocalDpBackend::kTriangleFilter);
  EXPECT_EQ(engine.Resolve(300, 300), LocalDpBackend::kBruteForce);
  LocalDpEngineOptions pinned;
  pinned.backend = LocalDpBackend::kTriangleFilter;
  EXPECT_EQ(LocalDpEngine(pinned).Resolve(10, 2),
            LocalDpBackend::kTriangleFilter);
}

// --------------------------------------------- Cross-backend equivalence

// Every backend (and the parallel path) must produce bit-identical rho,
// delta, and upslope — the determinism contract all aggregation layers
// rely on.
TEST(LocalEngineEquivalenceTest, BackendsAgreeBitIdentically) {
  CountingMetric metric;
  for (size_t dim : {2u, 8u}) {
    for (size_t n : {3u, 17u, 300u, 700u}) {
      auto ds = gen::GaussianMixture(n, dim, 3, 20.0, 3.0, 17 + n + dim);
      ASSERT_TRUE(ds.ok());
      LocalPointView view = LocalPointView::AllOf(*ds);
      const double dc = 2.5;
      for (DensityKernel kernel :
           {DensityKernel::kCutoff, DensityKernel::kGaussian}) {
        std::vector<uint32_t> ref_rho =
            EngineWith(LocalDpBackend::kBruteForce).Rho(view, dc, kernel,
                                                        metric);
        LocalDeltaScores ref_delta =
            EngineWith(LocalDpBackend::kBruteForce).Delta(view, ref_rho,
                                                          metric);
        for (LocalDpBackend backend : kAllBackends) {
          // Sequential and forced-parallel (parallel_min_group=2) paths.
          for (size_t parallel_min : {4096u, 2u}) {
            LocalDpEngine engine = EngineWith(backend, parallel_min);
            std::vector<uint32_t> rho = engine.Rho(view, dc, kernel, metric);
            EXPECT_EQ(rho, ref_rho)
                << "rho mismatch: backend=" << LocalDpBackendName(backend)
                << " n=" << n << " dim=" << dim
                << " kernel=" << static_cast<int>(kernel)
                << " parallel_min=" << parallel_min;
            LocalDeltaScores d = engine.Delta(view, ref_rho, metric);
            EXPECT_EQ(d.delta, ref_delta.delta);
            EXPECT_EQ(d.delta_sq, ref_delta.delta_sq);
            EXPECT_EQ(d.upslope, ref_delta.upslope)
                << "delta mismatch: backend=" << LocalDpBackendName(backend)
                << " n=" << n << " dim=" << dim
                << " parallel_min=" << parallel_min;
          }
        }
      }
    }
  }
}

// The sequential oracle must give the same scores whichever backend is
// selected through its options.
TEST(LocalEngineEquivalenceTest, SequentialDpBackendsAgree) {
  auto ds = gen::GaussianMixture(400, 3, 4, 25.0, 2.0, 41);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto ref = ComputeExactDp(*ds, 2.0, metric);
  ASSERT_TRUE(ref.ok());
  for (LocalDpBackend backend : kAllBackends) {
    SequentialDpOptions options;
    options.backend = backend;
    auto scores = ComputeExactDp(*ds, 2.0, metric, options);
    ASSERT_TRUE(scores.ok());
    EXPECT_EQ(scores->rho, ref->rho) << LocalDpBackendName(backend);
    EXPECT_EQ(scores->delta, ref->delta) << LocalDpBackendName(backend);
    EXPECT_EQ(scores->upslope, ref->upslope) << LocalDpBackendName(backend);
  }
}

// LSH-DDP must produce identical scores under every backend, with and
// without the SplitOversized sub-group path (the cap changes the scores, but
// never the backend equivalence).
TEST(LocalEngineEquivalenceTest, LshDdpBackendsAgreeWithAndWithoutSplit) {
  auto ds = gen::GaussianMixture(600, 4, 2, 20.0, 4.0, 23);  // fat buckets
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  for (size_t cap : {0u, 40u}) {
    DpScores ref;
    for (size_t b = 0; b < std::size(kAllBackends); ++b) {
      LshDdp::Params params;
      params.max_bucket_size = cap;
      params.local_backend = kAllBackends[b];
      LshDdp algo(params);
      auto scores = algo.ComputeScores(*ds, 2.0, metric, FastMr(), nullptr);
      ASSERT_TRUE(scores.ok());
      if (b == 0) {
        ref = *std::move(scores);
        continue;
      }
      EXPECT_EQ(scores->rho, ref.rho)
          << "cap=" << cap << " " << LocalDpBackendName(kAllBackends[b]);
      EXPECT_EQ(scores->delta, ref.delta)
          << "cap=" << cap << " " << LocalDpBackendName(kAllBackends[b]);
      EXPECT_EQ(scores->upslope, ref.upslope)
          << "cap=" << cap << " " << LocalDpBackendName(kAllBackends[b]);
    }
  }
}

// Basic-DDP and EDDPC are exact: under every backend they must match the
// sequential oracle bit-for-bit.
TEST(LocalEngineEquivalenceTest, ExactAlgorithmsMatchOracleUnderAllBackends) {
  auto ds = gen::GaussianMixture(350, 3, 3, 25.0, 2.5, 57);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  const double dc = 2.0;
  auto oracle = ComputeExactDp(*ds, dc, metric);
  ASSERT_TRUE(oracle.ok());
  for (LocalDpBackend backend : kAllBackends) {
    BasicDdp::Params bparams;
    bparams.block_size = 64;
    bparams.local_backend = backend;
    BasicDdp basic(bparams);
    auto bscores = basic.ComputeScores(*ds, dc, metric, FastMr(), nullptr);
    ASSERT_TRUE(bscores.ok());
    EXPECT_EQ(bscores->rho, oracle->rho) << LocalDpBackendName(backend);
    EXPECT_EQ(bscores->delta, oracle->delta) << LocalDpBackendName(backend);
    EXPECT_EQ(bscores->upslope, oracle->upslope) << LocalDpBackendName(backend);

    Eddpc::Params eparams;
    eparams.local_backend = backend;
    Eddpc eddpc(eparams);
    auto escores = eddpc.ComputeScores(*ds, dc, metric, FastMr(), nullptr);
    ASSERT_TRUE(escores.ok());
    EXPECT_EQ(escores->rho, oracle->rho) << LocalDpBackendName(backend);
    EXPECT_EQ(escores->delta, oracle->delta) << LocalDpBackendName(backend);
    EXPECT_EQ(escores->upslope, oracle->upslope) << LocalDpBackendName(backend);
  }
}

// ------------------------------------------------------------ Edge cases

TEST(LocalEngineEdgeTest, SinglePointGroup) {
  Dataset ds(2);
  ds.Add(std::vector<double>{1.0, 2.0});
  CountingMetric metric;
  for (LocalDpBackend backend : kAllBackends) {
    LocalDpEngine engine = EngineWith(backend);
    LocalPointView view = LocalPointView::AllOf(ds);
    std::vector<uint32_t> rho =
        engine.Rho(view, 1.0, DensityKernel::kCutoff, metric);
    ASSERT_EQ(rho.size(), 1u);
    EXPECT_EQ(rho[0], 0u);
    LocalDeltaScores d = engine.Delta(view, rho, metric);
    EXPECT_EQ(d.delta[0], kInf);
    EXPECT_EQ(d.delta_sq[0], kInf);
    EXPECT_EQ(d.upslope[0], kInvalidPointId);
  }
}

TEST(LocalEngineEdgeTest, AllCoincidentPoints) {
  const size_t n = 300;  // above kd_min_group so every backend really runs
  Dataset ds(3);
  for (size_t i = 0; i < n; ++i) ds.Add(std::vector<double>{4.0, 5.0, 6.0});
  CountingMetric metric;
  for (LocalDpBackend backend : kAllBackends) {
    LocalDpEngine engine = EngineWith(backend);
    LocalPointView view = LocalPointView::AllOf(ds);
    std::vector<uint32_t> rho =
        engine.Rho(view, 0.5, DensityKernel::kCutoff, metric);
    ASSERT_EQ(rho.size(), n);
    for (uint32_t r : rho) EXPECT_EQ(r, n - 1);
    // Equal rho everywhere: density order is by ascending id, so point 0 is
    // the local peak and everyone else sits at distance 0 from the smallest
    // denser id.
    LocalDeltaScores d = engine.Delta(view, rho, metric);
    EXPECT_EQ(d.delta[0], kInf);
    EXPECT_EQ(d.upslope[0], kInvalidPointId);
    for (size_t i = 1; i < n; ++i) {
      EXPECT_EQ(d.delta[i], 0.0) << LocalDpBackendName(backend) << " " << i;
      EXPECT_EQ(d.delta_sq[i], 0.0);
      EXPECT_EQ(d.upslope[i], 0u) << LocalDpBackendName(backend) << " " << i;
    }
  }
}

TEST(LocalEngineEdgeTest, SubsetViewUsesGlobalIds) {
  auto ds = gen::GaussianMixture(50, 2, 2, 10.0, 2.0, 7);
  ASSERT_TRUE(ds.ok());
  std::vector<PointId> ids;
  for (PointId i = 5; i < 25; ++i) ids.push_back(i);
  CountingMetric metric;
  LocalPointView view = LocalPointView::SubsetOf(*ds, ids);
  ASSERT_EQ(view.size(), ids.size());
  std::vector<uint32_t> rho =
      LocalDpEngine().Rho(view, 2.0, DensityKernel::kCutoff, metric);
  LocalDeltaScores d = LocalDpEngine().Delta(view, rho, metric);
  for (size_t k = 0; k < ids.size(); ++k) {
    if (d.upslope[k] == kInvalidPointId) continue;
    // Upslopes are global point ids drawn from the subset.
    EXPECT_GE(d.upslope[k], 5u);
    EXPECT_LT(d.upslope[k], 25u);
    EXPECT_NE(d.upslope[k], ids[k]);
  }
}

}  // namespace
}  // namespace ddp

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/dbscan.h"
#include "baselines/em_gmm.h"
#include "baselines/hierarchical.h"
#include "baselines/kmeans.h"
#include "baselines/mean_shift.h"
#include "dataset/generators.h"
#include "eval/metrics.h"

namespace ddp {
namespace baselines {
namespace {

// Three well-separated blobs: every reasonable algorithm should nail them.
const Dataset& Blobs() {
  static const Dataset* ds = [] {
    auto r = gen::GaussianMixture(300, 2, 3, 500.0, 2.0, 201);
    return new Dataset(std::move(r).ValueOrDie());
  }();
  return *ds;
}

// --------------------------------------------------------------- K-means

TEST(KmeansTest, RecoversSeparatedBlobs) {
  KmeansOptions options;
  options.k = 3;
  options.seed = 1;
  CountingMetric metric;
  auto result = RunKmeans(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 3u);
  auto ari = eval::AdjustedRandIndex(result->assignment, Blobs().labels());
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.95);
}

TEST(KmeansTest, InertiaNonIncreasingAcrossMoreIterations) {
  CountingMetric metric;
  KmeansOptions one, many;
  one.k = many.k = 3;
  one.seed = many.seed = 3;
  one.max_iterations = 1;
  many.max_iterations = 20;
  one.convergence_tol = many.convergence_tol = 0.0;
  auto r1 = RunKmeans(Blobs(), one, metric);
  auto r20 = RunKmeans(Blobs(), many, metric);
  ASSERT_TRUE(r1.ok() && r20.ok());
  EXPECT_LE(r20->inertia, r1->inertia);
}

TEST(KmeansTest, DeterministicInSeed) {
  CountingMetric metric;
  KmeansOptions options;
  options.k = 3;
  options.seed = 42;
  auto a = RunKmeans(Blobs(), options, metric);
  auto b = RunKmeans(Blobs(), options, metric);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST(KmeansTest, UniformInitAlsoWorks) {
  CountingMetric metric;
  KmeansOptions options;
  options.k = 3;
  options.use_kmeans_plus_plus = false;
  auto result = RunKmeans(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 3u);
}

TEST(KmeansTest, KEqualsNPutsEachPointAlone) {
  auto ds = gen::GaussianMixture(12, 2, 2, 100.0, 1.0, 5);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  KmeansOptions options;
  options.k = 12;
  auto result = RunKmeans(*ds, options, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-9);
}

TEST(KmeansTest, Validation) {
  CountingMetric metric;
  KmeansOptions options;
  options.k = 0;
  EXPECT_FALSE(RunKmeans(Blobs(), options, metric).ok());
  options.k = 1000000;
  EXPECT_FALSE(RunKmeans(Blobs(), options, metric).ok());
  options.k = 2;
  options.max_iterations = 0;
  EXPECT_FALSE(RunKmeans(Blobs(), options, metric).ok());
  Dataset empty(2);
  KmeansOptions ok;
  ok.k = 1;
  EXPECT_FALSE(RunKmeans(empty, ok, metric).ok());
}

// ---------------------------------------------------------------- DBSCAN

TEST(DbscanTest, SeparatedBlobsBecomeClusters) {
  CountingMetric metric;
  DbscanOptions options;
  options.epsilon = 10.0;  // within-blob scale
  options.min_points = 3;
  auto result = RunDbscan(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 3u);
  auto ari = eval::AdjustedRandIndex(result->assignment, Blobs().labels());
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.95);
}

TEST(DbscanTest, TinyEpsilonMakesEverythingNoiseWithHighMinPts) {
  CountingMetric metric;
  DbscanOptions options;
  options.epsilon = 1e-9;
  options.min_points = 3;
  auto result = RunDbscan(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 0u);
  for (int c : result->assignment) EXPECT_EQ(c, -1);
}

TEST(DbscanTest, HugeEpsilonMergesEverything) {
  CountingMetric metric;
  DbscanOptions options;
  options.epsilon = 1e9;
  options.min_points = 1;
  auto result = RunDbscan(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1u);
}

TEST(DbscanTest, MinPointsOneHasNoNoise) {
  CountingMetric metric;
  DbscanOptions options;
  options.epsilon = 5.0;
  options.min_points = 1;  // the paper's Fig. 8 configuration
  auto result = RunDbscan(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  for (int c : result->assignment) EXPECT_GE(c, 0);
}

TEST(DbscanTest, Validation) {
  CountingMetric metric;
  DbscanOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(RunDbscan(Blobs(), options, metric).ok());
  options.epsilon = 1.0;
  options.min_points = 0;
  EXPECT_FALSE(RunDbscan(Blobs(), options, metric).ok());
  Dataset empty(2);
  DbscanOptions ok;
  EXPECT_FALSE(RunDbscan(empty, ok, metric).ok());
}

// -------------------------------------------------------------------- EM

TEST(EmGmmTest, RecoversSeparatedBlobs) {
  CountingMetric metric;
  EmGmmOptions options;
  options.k = 3;
  options.seed = 2;
  auto result = RunEmGmm(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  auto ari = eval::AdjustedRandIndex(result->assignment, Blobs().labels());
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.95);
}

TEST(EmGmmTest, WeightsFormDistribution) {
  CountingMetric metric;
  EmGmmOptions options;
  options.k = 4;
  auto result = RunEmGmm(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (double w : result->weights) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EmGmmTest, LogLikelihoodImprovesWithIterations) {
  CountingMetric metric;
  EmGmmOptions one, many;
  one.k = many.k = 3;
  one.seed = many.seed = 5;
  one.max_iterations = 1;
  many.max_iterations = 25;
  auto r1 = RunEmGmm(Blobs(), one, metric);
  auto r25 = RunEmGmm(Blobs(), many, metric);
  ASSERT_TRUE(r1.ok() && r25.ok());
  EXPECT_GE(r25->log_likelihood, r1->log_likelihood - 1e-9);
}

TEST(EmGmmTest, VarianceFloorHolds) {
  CountingMetric metric;
  EmGmmOptions options;
  options.k = 3;
  options.min_variance = 0.5;
  auto result = RunEmGmm(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  for (const auto& var : result->variances) {
    for (double v : var) EXPECT_GE(v, 0.5);
  }
}

TEST(EmGmmTest, Validation) {
  CountingMetric metric;
  EmGmmOptions options;
  options.k = 0;
  EXPECT_FALSE(RunEmGmm(Blobs(), options, metric).ok());
  Dataset empty(2);
  EmGmmOptions ok;
  ok.k = 1;
  EXPECT_FALSE(RunEmGmm(empty, ok, metric).ok());
}

// ---------------------------------------------------------- Hierarchical

TEST(HierarchicalTest, SingleLinkageRecoversSeparatedBlobs) {
  CountingMetric metric;
  HierarchicalOptions options;
  options.num_clusters = 3;
  options.linkage = Linkage::kSingle;
  auto result = RunHierarchical(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  std::set<int> labels(result->assignment.begin(), result->assignment.end());
  EXPECT_EQ(labels.size(), 3u);
  auto ari = eval::AdjustedRandIndex(result->assignment, Blobs().labels());
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.95);
}

TEST(HierarchicalTest, AllLinkagesProduceRequestedClusterCount) {
  CountingMetric metric;
  for (Linkage linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    HierarchicalOptions options;
    options.num_clusters = 5;
    options.linkage = linkage;
    auto result = RunHierarchical(Blobs(), options, metric);
    ASSERT_TRUE(result.ok());
    std::set<int> labels(result->assignment.begin(), result->assignment.end());
    EXPECT_EQ(labels.size(), 5u);
  }
}

TEST(HierarchicalTest, OneClusterMergesEverything) {
  CountingMetric metric;
  HierarchicalOptions options;
  options.num_clusters = 1;
  auto result = RunHierarchical(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  for (int c : result->assignment) EXPECT_EQ(c, 0);
}

TEST(HierarchicalTest, NClustersKeepsAllSingletons) {
  auto ds = gen::GaussianMixture(20, 2, 2, 10.0, 1.0, 7);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  HierarchicalOptions options;
  options.num_clusters = 20;
  auto result = RunHierarchical(*ds, options, metric);
  ASSERT_TRUE(result.ok());
  std::set<int> labels(result->assignment.begin(), result->assignment.end());
  EXPECT_EQ(labels.size(), 20u);
}

TEST(HierarchicalTest, Validation) {
  CountingMetric metric;
  HierarchicalOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(RunHierarchical(Blobs(), options, metric).ok());
  options.num_clusters = Blobs().size() + 1;
  EXPECT_FALSE(RunHierarchical(Blobs(), options, metric).ok());
  options.num_clusters = 2;
  options.max_points = 10;  // cap triggers
  EXPECT_FALSE(RunHierarchical(Blobs(), options, metric).ok());
}

// ------------------------------------------------------------ Mean shift

TEST(MeanShiftTest, RecoversSeparatedBlobs) {
  CountingMetric metric;
  MeanShiftOptions options;
  options.bandwidth = 15.0;  // covers a blob, not the gaps
  auto result = RunMeanShift(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 3u);
  auto ari = eval::AdjustedRandIndex(result->assignment, Blobs().labels());
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.95);
}

TEST(MeanShiftTest, HugeBandwidthMergesEverything) {
  CountingMetric metric;
  MeanShiftOptions options;
  options.bandwidth = 1e9;
  auto result = RunMeanShift(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1u);
}

TEST(MeanShiftTest, TinyBandwidthKeepsPointsApart) {
  auto ds = gen::GaussianMixture(40, 2, 4, 1000.0, 1.0, 9);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  MeanShiftOptions options;
  options.bandwidth = 1e-6;  // below any inter-point distance
  auto result = RunMeanShift(*ds, options, metric);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, ds->size());
}

TEST(MeanShiftTest, ModesSitNearBlobCenters) {
  CountingMetric metric;
  MeanShiftOptions options;
  options.bandwidth = 15.0;
  auto result = RunMeanShift(Blobs(), options, metric);
  ASSERT_TRUE(result.ok());
  // Every mode should be within a few sigma of some planted center; verify
  // indirectly: each mode's nearest data point shares the mode's cluster.
  for (const auto& mode : result->modes) {
    double best = 1e300;
    PointId nearest = 0;
    for (size_t i = 0; i < Blobs().size(); ++i) {
      double d = Euclidean(mode, Blobs().point(static_cast<PointId>(i)));
      if (d < best) {
        best = d;
        nearest = static_cast<PointId>(i);
      }
    }
    EXPECT_LT(best, 5.0);
    (void)nearest;
  }
}

TEST(MeanShiftTest, Validation) {
  CountingMetric metric;
  MeanShiftOptions options;
  options.bandwidth = 0.0;
  EXPECT_FALSE(RunMeanShift(Blobs(), options, metric).ok());
  options.bandwidth = 1.0;
  options.max_iterations = 0;
  EXPECT_FALSE(RunMeanShift(Blobs(), options, metric).ok());
  options.max_iterations = 10;
  options.max_points = 10;
  EXPECT_FALSE(RunMeanShift(Blobs(), options, metric).ok());
  Dataset empty(2);
  MeanShiftOptions ok;
  EXPECT_FALSE(RunMeanShift(empty, ok, metric).ok());
}

}  // namespace
}  // namespace baselines
}  // namespace ddp

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mapreduce/checkpoint.h"
#include "mapreduce/counters.h"
#include "mapreduce/mapreduce.h"

namespace ddp {
namespace mr {
namespace {

// Classic word count over small documents.
JobSpec<std::string, std::string, uint32_t, std::pair<std::string, uint32_t>>
WordCountSpec() {
  JobSpec<std::string, std::string, uint32_t, std::pair<std::string, uint32_t>>
      spec;
  spec.name = "wordcount";
  spec.map = [](const std::string& doc, Emitter<std::string, uint32_t>* out) {
    size_t pos = 0;
    while (pos < doc.size()) {
      size_t end = doc.find(' ', pos);
      if (end == std::string::npos) end = doc.size();
      if (end > pos) out->Emit(doc.substr(pos, end - pos), 1);
      pos = end + 1;
    }
  };
  spec.reduce = [](const std::string& word, std::span<const uint32_t> counts,
                   std::vector<std::pair<std::string, uint32_t>>* out) {
    uint32_t total = 0;
    for (uint32_t c : counts) total += c;
    out->push_back({word, total});
  };
  return spec;
}

std::map<std::string, uint32_t> ToMap(
    const std::vector<std::pair<std::string, uint32_t>>& kv) {
  return {kv.begin(), kv.end()};
}

TEST(MapReduceTest, WordCountBasic) {
  std::vector<std::string> docs = {"a b a", "b c", "a"};
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs));
  ASSERT_TRUE(result.ok());
  auto counts = ToMap(*result);
  EXPECT_EQ(counts["a"], 3u);
  EXPECT_EQ(counts["b"], 2u);
  EXPECT_EQ(counts["c"], 1u);
  EXPECT_EQ(counts.size(), 3u);
}

TEST(MapReduceTest, EmptyInputProducesEmptyOutput) {
  std::vector<std::string> docs;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(MapReduceTest, MissingMapOrReduceIsInvalidArgument) {
  auto spec = WordCountSpec();
  spec.map = nullptr;
  std::vector<std::string> docs = {"a"};
  EXPECT_TRUE(RunJob(spec, std::span<const std::string>(docs))
                  .status()
                  .IsInvalidArgument());
  spec = WordCountSpec();
  spec.reduce = nullptr;
  EXPECT_TRUE(RunJob(spec, std::span<const std::string>(docs))
                  .status()
                  .IsInvalidArgument());
}

TEST(MapReduceTest, CountersAreAccurate) {
  std::vector<std::string> docs = {"x y", "x"};
  JobCounters counters;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       Options{}, &counters);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(counters.job_name, "wordcount");
  EXPECT_EQ(counters.map_input_records, 2u);
  EXPECT_EQ(counters.map_output_records, 3u);  // x, y, x
  EXPECT_EQ(counters.shuffle_records, 3u);
  EXPECT_EQ(counters.reduce_input_groups, 2u);  // x, y
  EXPECT_EQ(counters.reduce_output_records, 2u);
  EXPECT_GT(counters.shuffle_bytes, 0u);
  EXPECT_GE(counters.total_seconds, 0.0);
}

TEST(MapReduceTest, CombinerShrinksShuffleWithoutChangingResult) {
  // 200 copies of the same word: the combiner should collapse per-task
  // duplicates and shrink the shuffle.
  std::vector<std::string> docs(200, "same");
  Options options;
  options.num_workers = 2;

  JobCounters no_comb, with_comb;
  auto plain = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                      options, &no_comb);
  auto spec = WordCountSpec();
  spec.combiner = [](const std::string&, std::vector<uint32_t> values) {
    uint32_t sum = 0;
    for (uint32_t v : values) sum += v;
    return std::vector<uint32_t>{sum};
  };
  auto combined =
      RunJob(spec, std::span<const std::string>(docs), options, &with_comb);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(ToMap(*plain), ToMap(*combined));
  EXPECT_LT(with_comb.shuffle_bytes, no_comb.shuffle_bytes);
  EXPECT_LT(with_comb.shuffle_records, no_comb.shuffle_records);
  EXPECT_EQ(with_comb.combine_input_records, 200u);
}

TEST(MapReduceTest, DeterministicAcrossWorkerCounts) {
  std::vector<uint64_t> input(5000);
  std::iota(input.begin(), input.end(), 0);
  JobSpec<uint64_t, uint64_t, uint64_t, std::pair<uint64_t, uint64_t>> spec;
  spec.name = "mod-sum";
  spec.map = [](const uint64_t& v, Emitter<uint64_t, uint64_t>* out) {
    out->Emit(v % 37, v);
  };
  spec.reduce = [](const uint64_t& k, std::span<const uint64_t> values,
                   std::vector<std::pair<uint64_t, uint64_t>>* out) {
    uint64_t s = 0;
    for (uint64_t v : values) s += v;
    out->push_back({k, s});
  };
  Options o1, o4;
  o1.num_workers = 1;
  o1.num_partitions = 8;
  o4.num_workers = 4;
  o4.num_partitions = 8;
  auto r1 = RunJob(spec, std::span<const uint64_t>(input), o1);
  auto r4 = RunJob(spec, std::span<const uint64_t>(input), o4);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(*r1, *r4);  // identical order, not just identical content
}

TEST(MapReduceTest, AllValuesForKeyArriveTogether) {
  std::vector<uint32_t> input(1000);
  std::iota(input.begin(), input.end(), 0);
  JobSpec<uint32_t, uint32_t, uint32_t, std::pair<uint32_t, size_t>> spec;
  spec.name = "group-size";
  spec.map = [](const uint32_t& v, Emitter<uint32_t, uint32_t>* out) {
    out->Emit(v % 10, v);
  };
  spec.reduce = [](const uint32_t& k, std::span<const uint32_t> values,
                   std::vector<std::pair<uint32_t, size_t>>* out) {
    out->push_back({k, values.size()});
  };
  auto result = RunJob(spec, std::span<const uint32_t>(input));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 10u);
  for (const auto& [k, size] : *result) EXPECT_EQ(size, 100u);
}

TEST(MapReduceTest, VectorKeysWork) {
  // Keys are LSH-style signatures: vectors of int64.
  using Key = std::vector<int64_t>;
  std::vector<int64_t> input = {1, 2, 3, 4, 5, 6};
  JobSpec<int64_t, Key, int64_t, std::pair<Key, int64_t>> spec;
  spec.name = "vector-keys";
  spec.map = [](const int64_t& v, Emitter<Key, int64_t>* out) {
    out->Emit({v % 2, v % 3}, v);
  };
  spec.reduce = [](const Key& k, std::span<const int64_t> values,
                   std::vector<std::pair<Key, int64_t>>* out) {
    int64_t s = 0;
    for (int64_t v : values) s += v;
    out->push_back({k, s});
  };
  auto result = RunJob(spec, std::span<const int64_t>(input));
  ASSERT_TRUE(result.ok());
  // 6 inputs, keys (v%2, v%3): 1->(1,1) 2->(0,2) 3->(1,0) 4->(0,1) 5->(1,2)
  // 6->(0,0): all distinct.
  EXPECT_EQ(result->size(), 6u);
  int64_t total = 0;
  for (const auto& [k, s] : *result) total += s;
  EXPECT_EQ(total, 21);
}

TEST(MapReduceTest, MapCanEmitNothing) {
  std::vector<int> input = {1, 2, 3};
  JobSpec<int, int, int, int> spec;
  spec.name = "filter-all";
  spec.map = [](const int&, Emitter<int, int>*) {};
  spec.reduce = [](const int&, std::span<const int>, std::vector<int>* out) {
    out->push_back(1);
  };
  JobCounters counters;
  auto result =
      RunJob(spec, std::span<const int>(input), Options{}, &counters);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(counters.shuffle_bytes, 0u);
}

TEST(MapReduceTest, ReduceCanFanOut) {
  std::vector<int> input = {5};
  JobSpec<int, int, int, int> spec;
  spec.name = "fan-out";
  spec.map = [](const int& v, Emitter<int, int>* out) { out->Emit(0, v); };
  spec.reduce = [](const int&, std::span<const int> values,
                   std::vector<int>* out) {
    for (int v : values) {
      for (int i = 0; i < v; ++i) out->push_back(i);
    }
  };
  auto result = RunJob(spec, std::span<const int>(input));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
}

TEST(MapReduceTest, SinglePartitionStillGroupsCorrectly) {
  std::vector<std::string> docs = {"a b", "b c", "c d"};
  Options options;
  options.num_partitions = 1;
  auto result =
      RunJob(WordCountSpec(), std::span<const std::string>(docs), options);
  ASSERT_TRUE(result.ok());
  auto counts = ToMap(*result);
  EXPECT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts["b"], 2u);
}

TEST(MapReduceTest, ManyPartitionsStillGroupCorrectly) {
  std::vector<std::string> docs = {"a b a b", "a"};
  Options options;
  options.num_partitions = 64;
  auto result =
      RunJob(WordCountSpec(), std::span<const std::string>(docs), options);
  ASSERT_TRUE(result.ok());
  auto counts = ToMap(*result);
  EXPECT_EQ(counts["a"], 3u);
  EXPECT_EQ(counts["b"], 2u);
}

TEST(MapReduceTest, ShuffleBytesScaleWithPayload) {
  // Doubling the payload per record should increase shuffle volume.
  using Payload = std::vector<double>;
  auto make_spec = [](size_t width) {
    JobSpec<int, int, Payload, int> spec;
    spec.name = "payload";
    spec.map = [width](const int& v, Emitter<int, Payload>* out) {
      out->Emit(v % 4, Payload(width, 1.0));
    };
    spec.reduce = [](const int&, std::span<const Payload>,
                     std::vector<int>* out) { out->push_back(0); };
    return spec;
  };
  std::vector<int> input(100);
  std::iota(input.begin(), input.end(), 0);
  JobCounters narrow, wide;
  ASSERT_TRUE(RunJob(make_spec(10), std::span<const int>(input), Options{},
                     &narrow)
                  .ok());
  ASSERT_TRUE(
      RunJob(make_spec(20), std::span<const int>(input), Options{}, &wide)
          .ok());
  EXPECT_GT(wide.shuffle_bytes, narrow.shuffle_bytes);
  // 100 records x 10 extra doubles x 8 bytes = 8000 extra bytes exactly.
  EXPECT_EQ(wide.shuffle_bytes - narrow.shuffle_bytes, 100u * 10u * 8u);
}

TEST(KeyTraitsTest, PairAndVectorHashing) {
  using VK = std::vector<int64_t>;
  VK a = {1, 2, 3}, b = {1, 2, 3}, c = {1, 2, 4};
  EXPECT_EQ(KeyTraits<VK>::Hash(a), KeyTraits<VK>::Hash(b));
  EXPECT_NE(KeyTraits<VK>::Hash(a), KeyTraits<VK>::Hash(c));
  EXPECT_TRUE(KeyTraits<VK>::Less(a, c));
  using PK = std::pair<uint32_t, VK>;
  PK p1 = {0, a}, p2 = {0, c}, p3 = {1, a};
  EXPECT_TRUE(KeyTraits<PK>::Less(p1, p2));
  EXPECT_TRUE(KeyTraits<PK>::Less(p1, p3));
  EXPECT_NE(KeyTraits<PK>::Hash(p1), KeyTraits<PK>::Hash(p3));
}

TEST(RunStatsTest, Aggregation) {
  RunStats stats;
  JobCounters a;
  a.job_name = "a";
  a.shuffle_bytes = 100;
  a.shuffle_records = 10;
  a.total_seconds = 1.5;
  JobCounters b;
  b.job_name = "b";
  b.shuffle_bytes = 50;
  b.shuffle_records = 5;
  b.total_seconds = 0.5;
  stats.Add(a);
  stats.Add(b);
  EXPECT_EQ(stats.TotalShuffleBytes(), 150u);
  EXPECT_EQ(stats.TotalShuffleRecords(), 15u);
  EXPECT_DOUBLE_EQ(stats.TotalSeconds(), 2.0);
  EXPECT_NE(stats.ToString().find("a:"), std::string::npos);
  EXPECT_NE(stats.ToString().find("TOTAL"), std::string::npos);
}

// ------------------------------------------------------ Fault injection

TEST(FaultInjectionTest, JobSurvivesMapFailures) {
  std::vector<std::string> docs(64, "a b");
  Options faulty;
  faulty.num_workers = 2;
  faulty.faults.map_failure_rate = 0.4;
  faulty.faults.seed = 3;
  faulty.max_task_attempts = 16;  // 0.4^16: exhaustion essentially impossible
  JobCounters counters;
  auto result =
      RunJob(WordCountSpec(), std::span<const std::string>(docs), faulty,
             &counters);
  ASSERT_TRUE(result.ok());
  auto counts = ToMap(*result);
  EXPECT_EQ(counts["a"], 64u);
  EXPECT_EQ(counts["b"], 64u);
  EXPECT_GT(counters.map_task_retries, 0u);
}

TEST(FaultInjectionTest, JobSurvivesReduceFailures) {
  std::vector<std::string> docs(64, "x y z");
  Options faulty;
  faulty.num_workers = 2;
  faulty.faults.reduce_failure_rate = 0.4;
  faulty.faults.seed = 5;
  faulty.max_task_attempts = 16;
  JobCounters counters;
  auto result =
      RunJob(WordCountSpec(), std::span<const std::string>(docs), faulty,
             &counters);
  ASSERT_TRUE(result.ok());
  auto counts = ToMap(*result);
  EXPECT_EQ(counts["x"], 64u);
  EXPECT_GT(counters.reduce_task_retries, 0u);
}

TEST(FaultInjectionTest, ResultsIdenticalWithAndWithoutFaults) {
  std::vector<std::string> docs;
  for (int i = 0; i < 50; ++i) {
    docs.push_back("w" + std::to_string(i % 7) + " w" + std::to_string(i % 3));
  }
  Options clean, faulty;
  clean.num_workers = faulty.num_workers = 2;
  clean.num_partitions = faulty.num_partitions = 8;
  faulty.faults.map_failure_rate = 0.3;
  faulty.faults.reduce_failure_rate = 0.3;
  faulty.max_task_attempts = 16;
  auto a = RunJob(WordCountSpec(), std::span<const std::string>(docs), clean);
  auto b = RunJob(WordCountSpec(), std::span<const std::string>(docs), faulty);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);  // identical outputs, including order
}

TEST(FaultInjectionTest, CertainFailureExhaustsAttempts) {
  std::vector<std::string> docs = {"a"};
  Options doomed;
  doomed.faults.map_failure_rate = 1.0;
  doomed.max_task_attempts = 3;
  auto result =
      RunJob(WordCountSpec(), std::span<const std::string>(docs), doomed);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  // Reduce-side certain failure also fails the job.
  Options doomed_reduce;
  doomed_reduce.faults.reduce_failure_rate = 1.0;
  auto r2 = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                   doomed_reduce);
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status().IsInternal());
}

TEST(FaultInjectionTest, FailureDecisionIsDeterministic) {
  FaultInjection faults;
  faults.seed = 9;
  bool a = internal::ShouldInjectFailure(faults, 0.5, "job", 0, 3, 1);
  bool b = internal::ShouldInjectFailure(faults, 0.5, "job", 0, 3, 1);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(internal::ShouldInjectFailure(faults, 0.0, "job", 0, 3, 1));
  EXPECT_TRUE(internal::ShouldInjectFailure(faults, 1.0, "job", 0, 3, 1));
}

TEST(SkewCounterTest, MaxPartitionTracksHotKey) {
  // All records to one key: one partition carries everything.
  std::vector<int> input(200);
  std::iota(input.begin(), input.end(), 0);
  JobSpec<int, int, int, int> spec;
  spec.name = "hot-key";
  spec.map = [](const int& v, Emitter<int, int>* out) { out->Emit(7, v); };
  spec.reduce = [](const int&, std::span<const int> values,
                   std::vector<int>* out) {
    out->push_back(static_cast<int>(values.size()));
  };
  Options options;
  options.num_partitions = 16;
  JobCounters counters;
  auto result = RunJob(spec, std::span<const int>(input), options, &counters);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(counters.max_partition_bytes, counters.shuffle_bytes);
}

TEST(MapReduceStressTest, LargeSkewedWorkloadWithFaultsAndCombiner) {
  // 20k records, zipf-ish key skew, combiner, 4 workers, injected faults:
  // the kitchen sink. Output must equal an analytically computed histogram.
  const size_t n = 20000;
  std::vector<uint32_t> input(n);
  std::iota(input.begin(), input.end(), 0);
  JobSpec<uint32_t, uint32_t, uint64_t, std::pair<uint32_t, uint64_t>> spec;
  spec.name = "stress";
  spec.map = [](const uint32_t& v, Emitter<uint32_t, uint64_t>* out) {
    // Key skew: ~half of all records share key 0.
    uint32_t key = v % 2 == 0 ? 0 : v % 97;
    out->Emit(key, v);
  };
  spec.combiner = [](const uint32_t&, std::vector<uint64_t> values) {
    uint64_t s = 0;
    for (uint64_t v : values) s += v;
    return std::vector<uint64_t>{s};
  };
  spec.reduce = [](const uint32_t& k, std::span<const uint64_t> values,
                   std::vector<std::pair<uint32_t, uint64_t>>* out) {
    uint64_t s = 0;
    for (uint64_t v : values) s += v;
    out->push_back({k, s});
  };
  Options options;
  options.num_workers = 4;
  options.num_partitions = 16;
  options.faults.map_failure_rate = 0.2;
  options.faults.reduce_failure_rate = 0.2;
  options.max_task_attempts = 16;
  JobCounters counters;
  auto result =
      RunJob(spec, std::span<const uint32_t>(input), options, &counters);
  ASSERT_TRUE(result.ok());
  // Analytic ground truth.
  std::map<uint32_t, uint64_t> expected;
  for (uint32_t v = 0; v < n; ++v) {
    expected[v % 2 == 0 ? 0 : v % 97] += v;
  }
  std::map<uint32_t, uint64_t> got(result->begin(), result->end());
  EXPECT_EQ(got, expected);
  // Skew surfaced: the hot partition carries most of the bytes.
  EXPECT_GT(counters.max_partition_bytes, counters.shuffle_bytes / 16);
}

TEST(CostModelTest, ModeledSecondsChargesShuffle) {
  std::vector<std::string> docs(50, "alpha beta gamma");
  Options plain, modeled;
  modeled.modeled_shuffle_bandwidth = 1e6;  // 1 MB/s: visible charge
  JobCounters plain_counters, modeled_counters;
  ASSERT_TRUE(RunJob(WordCountSpec(), std::span<const std::string>(docs),
                     plain, &plain_counters)
                  .ok());
  ASSERT_TRUE(RunJob(WordCountSpec(), std::span<const std::string>(docs),
                     modeled, &modeled_counters)
                  .ok());
  // Off: modeled == measured.
  EXPECT_DOUBLE_EQ(plain_counters.modeled_seconds,
                   plain_counters.total_seconds);
  // On: measured + bytes / bandwidth.
  EXPECT_NEAR(modeled_counters.modeled_seconds,
              modeled_counters.total_seconds +
                  static_cast<double>(modeled_counters.shuffle_bytes) / 1e6,
              1e-12);
}

// ------------------------------------------------- Exceptions in user code

TEST(ExceptionTest, ThrownMapExceptionBecomesInternalStatus) {
  std::vector<std::string> docs = {"a"};
  auto spec = WordCountSpec();
  spec.map = [](const std::string&, Emitter<std::string, uint32_t>*) {
    throw std::runtime_error("user map blew up");
  };
  Options options;
  options.max_task_attempts = 3;
  auto result = RunJob(spec, std::span<const std::string>(docs), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_NE(result.status().message().find("user map blew up"),
            std::string::npos);
}

TEST(ExceptionTest, ThrownReduceExceptionBecomesInternalStatus) {
  std::vector<std::string> docs = {"a"};
  auto spec = WordCountSpec();
  spec.reduce = [](const std::string&, std::span<const uint32_t>,
                   std::vector<std::pair<std::string, uint32_t>>*) {
    throw std::runtime_error("user reduce blew up");
  };
  auto result = RunJob(spec, std::span<const std::string>(docs));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_NE(result.status().message().find("user reduce blew up"),
            std::string::npos);
}

TEST(ExceptionTest, TransientExceptionIsRetriedAndCounted) {
  std::vector<std::string> docs = {"a b"};
  auto spec = WordCountSpec();
  auto hiccups = std::make_shared<std::atomic<int>>(0);
  auto inner = spec.map;
  spec.map = [hiccups, inner](const std::string& doc,
                              Emitter<std::string, uint32_t>* out) {
    if (hiccups->fetch_add(1, std::memory_order_relaxed) == 0) {
      throw std::runtime_error("transient");
    }
    inner(doc, out);
  };
  JobCounters counters;
  auto result =
      RunJob(spec, std::span<const std::string>(docs), Options{}, &counters);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToMap(*result)["a"], 1u);
  EXPECT_EQ(counters.task_exceptions, 1u);
  EXPECT_EQ(counters.map_task_retries, 1u);
}

// --------------------------------------------------------- Task deadlines

TEST(DeadlineTest, SlowAttemptIsKilledAndRetried) {
  // The first map attempt dawdles past the deadline; the retry is fast.
  std::vector<std::string> docs = {"a"};
  auto spec = WordCountSpec();
  auto calls = std::make_shared<std::atomic<int>>(0);
  auto inner = spec.map;
  spec.map = [calls, inner](const std::string& doc,
                            Emitter<std::string, uint32_t>* out) {
    if (calls->fetch_add(1, std::memory_order_relaxed) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
    }
    inner(doc, out);
  };
  Options options;
  options.task_deadline_seconds = 0.02;
  JobCounters counters;
  auto result =
      RunJob(spec, std::span<const std::string>(docs), options, &counters);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToMap(*result)["a"], 1u);
  EXPECT_GE(counters.deadline_kills, 1u);
  EXPECT_GE(counters.map_task_retries, 1u);
}

TEST(DeadlineTest, PersistentOverrunExhaustsAttemptBudget) {
  std::vector<std::string> docs = {"a"};
  auto spec = WordCountSpec();
  auto inner = spec.map;
  spec.map = [inner](const std::string& doc,
                     Emitter<std::string, uint32_t>* out) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    inner(doc, out);
  };
  Options options;
  options.task_deadline_seconds = 0.005;
  options.max_task_attempts = 2;
  auto result = RunJob(spec, std::span<const std::string>(docs), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_NE(result.status().message().find("2 attempts"), std::string::npos);
  EXPECT_NE(result.status().message().find("deadline"), std::string::npos);
}

// ------------------------------------- Stragglers & speculative execution

TEST(SpeculationTest, BackupAttemptsRescueInjectedStragglers) {
  std::vector<uint64_t> input(512);
  std::iota(input.begin(), input.end(), 0);
  JobSpec<uint64_t, uint64_t, uint64_t, std::pair<uint64_t, uint64_t>> spec;
  spec.name = "spec-exec";
  spec.map = [](const uint64_t& v, Emitter<uint64_t, uint64_t>* out) {
    out->Emit(v % 13, v);
  };
  spec.reduce = [](const uint64_t& k, std::span<const uint64_t> values,
                   std::vector<std::pair<uint64_t, uint64_t>>* out) {
    uint64_t s = 0;
    for (uint64_t v : values) s += v;
    out->push_back({k, s});
  };
  Options clean;
  clean.num_workers = 4;
  clean.num_partitions = 8;
  auto baseline = RunJob(spec, std::span<const uint64_t>(input), clean);
  ASSERT_TRUE(baseline.ok());

  Options slow = clean;
  slow.faults.straggler_rate = 0.2;
  slow.faults.straggler_slowdown = 10.0;
  slow.faults.straggler_min_seconds = 0.25;
  slow.faults.seed = 7;
  slow.speculative_execution = true;
  slow.speculative_multiplier = 3.0;
  slow.speculative_min_completed = 3;
  JobCounters counters;
  auto result =
      RunJob(spec, std::span<const uint64_t>(input), slow, &counters);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*baseline, *result);  // first-commit-wins is bit-identical
  EXPECT_GT(counters.speculative_launches, 0u);
  EXPECT_GT(counters.speculative_wins, 0u);
  EXPECT_GT(counters.straggler_ratio, 1.0);
  EXPECT_GE(counters.max_attempt_seconds, counters.median_attempt_seconds);
}

TEST(SpeculationTest, AttemptDurationStatsArePopulated) {
  std::vector<std::string> docs(32, "a b c");
  JobCounters counters;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       Options{}, &counters);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(counters.straggler_ratio, 0.0);
  EXPECT_GE(counters.p99_attempt_seconds, counters.median_attempt_seconds);
  EXPECT_GE(counters.max_attempt_seconds, counters.p99_attempt_seconds);
}

// ------------------------------------------------- Bad-record tolerance

TEST(BadRecordTest, CorruptionFailsJobByDefault) {
  std::vector<std::string> docs(16, "a b");
  Options options;
  options.num_workers = 2;
  options.faults.corruption_rate = 1.0;
  auto result =
      RunJob(WordCountSpec(), std::span<const std::string>(docs), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
}

TEST(BadRecordTest, SkipBadRecordsStepsOverPoisonAndCountsIt) {
  std::vector<std::string> docs(16, "a b");
  Options clean;
  clean.num_workers = 2;
  clean.num_partitions = 4;
  auto baseline =
      RunJob(WordCountSpec(), std::span<const std::string>(docs), clean);
  ASSERT_TRUE(baseline.ok());

  Options poisoned = clean;
  poisoned.faults.corruption_rate = 1.0;  // every (task, partition) poisoned
  poisoned.skip_bad_records = true;
  JobCounters counters;
  auto result = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                       poisoned, &counters);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*baseline, *result);  // poison is off-path: output untouched
  // One poison frame per (map task, partition): 16 docs -> 8 map tasks
  // (2 workers x 4) x 4 partitions.
  EXPECT_EQ(counters.skipped_records, 8u * 4u);
}

TEST(BadRecordTest, SkipIsDeterministicAcrossRetries) {
  // Corruption + failures + skipping together must still be bit-identical:
  // poison placement ignores the attempt number.
  std::vector<std::string> docs(32, "x y z");
  Options clean;
  clean.num_workers = 2;
  clean.num_partitions = 4;
  auto baseline =
      RunJob(WordCountSpec(), std::span<const std::string>(docs), clean);
  ASSERT_TRUE(baseline.ok());
  Options chaos = clean;
  chaos.faults.corruption_rate = 0.5;
  chaos.faults.map_failure_rate = 0.3;
  chaos.faults.reduce_failure_rate = 0.3;
  chaos.max_task_attempts = 16;
  chaos.skip_bad_records = true;
  auto result =
      RunJob(WordCountSpec(), std::span<const std::string>(docs), chaos);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*baseline, *result);
}

// ------------------------------------------------- Checkpoint store

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("ddp_ckpt_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CheckpointTest, SecondRunReplaysFromStore) {
  std::vector<std::string> docs = {"a b a", "b c"};
  CheckpointStore store(dir_);
  Options options;
  options.checkpoint = &store;

  JobCounters first, second;
  store.ResetSequence();
  auto r1 = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                   options, &first);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(first.loaded_from_checkpoint);

  store.ResetSequence();  // a fresh driver run requests the same keys
  auto r2 = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                   options, &second);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(second.loaded_from_checkpoint);
  EXPECT_EQ(*r1, *r2);
  EXPECT_EQ(second.reduce_output_records, r1->size());
}

TEST_F(CheckpointTest, SimulatedKillAbortsAndResumeReplays) {
  std::vector<std::string> docs = {"a b", "c"};
  CheckpointStore store(dir_);
  Options options;
  options.checkpoint = &store;

  store.ResetSequence();
  auto r1 =
      RunJob(WordCountSpec(), std::span<const std::string>(docs), options);
  ASSERT_TRUE(r1.ok());

  store.SetKillAfter(0);  // next save dies
  store.ResetSequence();
  // The first job replays (no save), so add a second, different job that
  // must save -- and die doing it.
  JobCounters replayed;
  auto r2 = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                   options, &replayed);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(replayed.loaded_from_checkpoint);
  std::vector<std::string> more = {"d e"};
  auto spec2 = WordCountSpec();
  spec2.name = "wordcount-2";
  auto killed = RunJob(spec2, std::span<const std::string>(more), options);
  ASSERT_FALSE(killed.ok());
  EXPECT_TRUE(killed.status().IsCancelled());

  store.SetKillAfter(-1);
  store.ResetSequence();
  JobCounters c1, c2;
  auto r3 = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                   options, &c1);
  auto r4 = RunJob(spec2, std::span<const std::string>(more), options, &c2);
  ASSERT_TRUE(r3.ok() && r4.ok());
  EXPECT_TRUE(c1.loaded_from_checkpoint);   // finished before the kill
  EXPECT_FALSE(c2.loaded_from_checkpoint);  // lost to the kill; re-ran
  EXPECT_EQ(*r1, *r3);
}

TEST_F(CheckpointTest, CorruptEntryIsRecomputedNotTrusted) {
  std::vector<std::string> docs = {"a b a"};
  CheckpointStore store(dir_);
  Options options;
  options.checkpoint = &store;
  store.ResetSequence();
  auto r1 =
      RunJob(WordCountSpec(), std::span<const std::string>(docs), options);
  ASSERT_TRUE(r1.ok());

  // Flip bytes in every stored entry.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::fstream f(entry.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(6);
    f.put('\xee');
  }
  store.ResetSequence();
  JobCounters counters;
  auto r2 = RunJob(WordCountSpec(), std::span<const std::string>(docs),
                   options, &counters);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(counters.loaded_from_checkpoint);  // checksum caught it
  EXPECT_EQ(*r1, *r2);
}

TEST(OptionsTest, Defaults) {
  Options o;
  EXPECT_GE(o.ResolvedWorkers(), 1u);
  EXPECT_EQ(o.ResolvedPartitions(), 4 * o.ResolvedWorkers());
  o.num_workers = 3;
  o.num_partitions = 7;
  EXPECT_EQ(o.ResolvedWorkers(), 3u);
  EXPECT_EQ(o.ResolvedPartitions(), 7u);
}

}  // namespace
}  // namespace mr
}  // namespace ddp

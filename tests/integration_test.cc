#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "baselines/dbscan.h"
#include "baselines/kmeans.h"
#include "core/assignment.h"
#include "core/cutoff.h"
#include "core/decision_graph.h"
#include "core/sequential_dp.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/driver.h"
#include "ddp/eddpc.h"
#include "ddp/lsh_ddp.h"
#include "eval/metrics.h"

namespace ddp {
namespace {

mr::Options FastMr() {
  mr::Options o;
  o.num_workers = 2;
  o.num_partitions = 8;
  // CI's low-budget smoke job sets DDP_TEST_MEMORY_BUDGET (e.g. 4096) to
  // force every MapReduce job in this suite through the out-of-core
  // spill/merge path; results must not change (the spill determinism
  // contract), so every assertion below doubles as a spill-path check.
  if (const char* budget = std::getenv("DDP_TEST_MEMORY_BUDGET")) {
    o.memory_budget_bytes = static_cast<uint64_t>(std::atoll(budget));
  }
  // DDP_TEST_EXEC_MODE=fork reruns the whole suite on forked worker
  // processes (CI does this combined with the 4 KiB budget above); every
  // bit-identity assertion then doubles as a multi-process determinism
  // check. Unsupported platforms fall back to in-process silently.
  if (const char* mode = std::getenv("DDP_TEST_EXEC_MODE")) {
    if (std::string(mode) == "fork") o.exec_mode = mr::ExecMode::kFork;
  }
  // DDP_TEST_TRANSPORT=tcp moves the fork-mode shuffle onto TCP channels
  // (listener + reconnecting workers); the streamed runs and therefore the
  // outputs must stay byte-identical to the socketpair transport.
  if (const char* transport = std::getenv("DDP_TEST_TRANSPORT")) {
    if (std::string(transport) == "tcp") o.transport = mr::Transport::kTcp;
  }
  return o;
}

// Full sequential-DP clustering for reference.
Result<ClusterResult> SequentialDpClustering(const Dataset& ds, size_t k,
                                             double percentile = 0.02) {
  CountingMetric metric;
  CutoffOptions cutoff;
  cutoff.percentile = percentile;
  DDP_ASSIGN_OR_RETURN(double dc, ChooseCutoff(ds, metric, cutoff));
  DDP_ASSIGN_OR_RETURN(DpScores scores, ComputeExactDp(ds, dc, metric));
  DecisionGraph graph = DecisionGraph::FromScores(scores);
  return AssignClusters(ds, scores, graph.SelectTopK(k), metric);
}

// ------------------------------------------------- DP quality (Fig. 8)

TEST(IntegrationTest, DpRecoversAggregationShapes) {
  // The paper's headline qualitative claim: DP correctly identifies all 7
  // clusters of the Aggregation data set, including non-oval shapes.
  auto ds = gen::AggregationLike(42);
  ASSERT_TRUE(ds.ok());
  auto clusters = SequentialDpClustering(*ds, 7);
  ASSERT_TRUE(clusters.ok());
  auto ari = eval::AdjustedRandIndex(clusters->assignment, ds->labels());
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.75) << "DP should recover most of the 7 shaped clusters";
}

TEST(IntegrationTest, DpBeatsKmeansOnShapedData) {
  // K-means assumes oval clusters; on the crescent-containing Aggregation
  // layout DP should score at least as well (Fig. 8(b) vs 8(d)).
  auto ds = gen::AggregationLike(42);
  ASSERT_TRUE(ds.ok());
  auto dp = SequentialDpClustering(*ds, 7);
  ASSERT_TRUE(dp.ok());
  CountingMetric metric;
  baselines::KmeansOptions kopts;
  kopts.k = 7;
  kopts.seed = 1;
  auto km = baselines::RunKmeans(*ds, kopts, metric);
  ASSERT_TRUE(km.ok());
  double dp_ari =
      std::move(eval::AdjustedRandIndex(dp->assignment, ds->labels()))
          .ValueOrDie();
  double km_ari =
      std::move(eval::AdjustedRandIndex(km->assignment, ds->labels()))
          .ValueOrDie();
  EXPECT_GE(dp_ari, km_ari - 0.05);
}

TEST(IntegrationTest, DpNailsClassicShapedSets) {
  // The paper: "we compare the algorithms using 7 other shaped data sets
  // and see similar trends". Three classics as regression anchors: DP must
  // recover them perfectly at the 2% cutoff rule.
  struct Case {
    const char* name;
    Result<Dataset> ds;
    size_t k;
  };
  Case cases[] = {
      {"spiral", gen::SpiralLike(42), 3},
      {"flame", gen::FlameLike(42), 2},
      {"r15", gen::R15Like(42), 15},
  };
  for (Case& c : cases) {
    ASSERT_TRUE(c.ds.ok()) << c.name;
    auto clusters = SequentialDpClustering(*c.ds, c.k);
    ASSERT_TRUE(clusters.ok()) << c.name;
    double ari =
        std::move(eval::AdjustedRandIndex(clusters->assignment, c.ds->labels()))
            .ValueOrDie();
    EXPECT_GT(ari, 0.98) << c.name;
  }
}

// ------------------------------- The three distributed variants agree

TEST(IntegrationTest, ExactVariantsAgreeBitForBit) {
  auto ds = gen::KddLike(3, 400);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto dc = ChooseCutoff(*ds, metric);
  ASSERT_TRUE(dc.ok());

  auto exact = ComputeExactDp(*ds, *dc, metric);
  ASSERT_TRUE(exact.ok());
  BasicDdp::Params bp;
  bp.block_size = 64;
  BasicDdp basic(bp);
  auto basic_scores = basic.ComputeScores(*ds, *dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(basic_scores.ok());
  Eddpc eddpc;
  auto eddpc_scores = eddpc.ComputeScores(*ds, *dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(eddpc_scores.ok());

  EXPECT_EQ(basic_scores->rho, exact->rho);
  EXPECT_EQ(eddpc_scores->rho, exact->rho);
  EXPECT_EQ(basic_scores->delta, exact->delta);
  EXPECT_EQ(eddpc_scores->delta, exact->delta);
  EXPECT_EQ(basic_scores->upslope, exact->upslope);
  EXPECT_EQ(eddpc_scores->upslope, exact->upslope);
}

TEST(IntegrationTest, LshDdpClusteringMatchesBasicDdpClustering) {
  // Sec. VI-C: "the cluster results of Basic-DDP and LSH-DDP are almost the
  // same" — compare end-to-end assignments on an S2-like set.
  auto ds = gen::S2Like(5, 1200);
  ASSERT_TRUE(ds.ok());

  DdpOptions options;
  options.mr = FastMr();
  options.selector = PeakSelector::TopK(15);
  options.cutoff.percentile = 0.02;

  BasicDdp basic;
  auto basic_run = RunDistributedDp(&basic, *ds, options);
  ASSERT_TRUE(basic_run.ok());
  LshDdp lsh;
  auto lsh_run = RunDistributedDp(&lsh, *ds, options);
  ASSERT_TRUE(lsh_run.ok());

  auto agreement = eval::AdjustedRandIndex(basic_run->clusters.assignment,
                                           lsh_run->clusters.assignment);
  ASSERT_TRUE(agreement.ok());
  EXPECT_GT(*agreement, 0.8) << "approximate clustering must track exact";
}

TEST(IntegrationTest, AllThreeVariantsRecoverPlantedClusters) {
  auto ds = gen::GaussianMixture(500, 3, 4, 300.0, 2.0, 303);
  ASSERT_TRUE(ds.ok());
  DdpOptions options;
  options.mr = FastMr();
  options.selector = PeakSelector::TopK(4);

  BasicDdp basic;
  LshDdp lsh;
  Eddpc eddpc;
  for (DistributedDpAlgorithm* algo :
       std::vector<DistributedDpAlgorithm*>{&basic, &lsh, &eddpc}) {
    auto run = RunDistributedDp(algo, *ds, options);
    ASSERT_TRUE(run.ok()) << algo->name();
    auto ari = eval::AdjustedRandIndex(run->clusters.assignment, ds->labels());
    ASSERT_TRUE(ari.ok());
    EXPECT_GT(*ari, 0.95) << algo->name();
  }
}

// ----------------------------------- Decision-graph behaviour (Fig. 7)

TEST(IntegrationTest, LshDecisionGraphKeepsPeaksSelectable) {
  // Fig. 7: LSH-DDP's decision graph shows the same number of selectable
  // peaks; some have delta saturated at the top of the chart.
  auto ds = gen::S2Like(7, 1000);
  ASSERT_TRUE(ds.ok());
  CountingMetric metric;
  auto dc = ChooseCutoff(*ds, metric);
  ASSERT_TRUE(dc.ok());

  auto exact = ComputeExactDp(*ds, *dc, metric);
  ASSERT_TRUE(exact.ok());
  LshDdp lsh;
  auto approx = lsh.ComputeScores(*ds, *dc, metric, FastMr(), nullptr);
  ASSERT_TRUE(approx.ok());

  DecisionGraph exact_graph = DecisionGraph::FromScores(*exact);
  DecisionGraph approx_graph = DecisionGraph::FromScores(*approx);
  std::vector<PointId> exact_peaks = exact_graph.SelectTopK(15);
  std::vector<PointId> approx_peaks = approx_graph.SelectTopK(15);

  // The peak sets should overlap substantially (identical is not required:
  // a cluster's representative may shift to a near-duplicate point).
  std::set<PointId> e(exact_peaks.begin(), exact_peaks.end());
  size_t common = 0;
  for (PointId p : approx_peaks) common += e.count(p);
  EXPECT_GE(common, 9u) << "at least ~2/3 of the 15 peaks should coincide";
}

// --------------------------------------------------- Cost shape checks

TEST(IntegrationTest, BasicDdpCostGrowsQuadratically) {
  // Fig. 10(c): Basic-DDP distance count is quadratic; doubling N roughly
  // quadruples the work. The DistanceCounter is shared driver-side state
  // incremented inside task bodies, which cannot cross the fork boundary,
  // so this measurement pins the in-process executor regardless of
  // DDP_TEST_EXEC_MODE.
  mr::Options mr_opts = FastMr();
  mr_opts.exec_mode = mr::ExecMode::kInProc;
  CountingMetric unused;
  auto count_for = [&](size_t n) {
    auto ds = gen::BigCrossLike(9, n);
    EXPECT_TRUE(ds.ok());
    DistanceCounter counter;
    CountingMetric metric(&counter);
    BasicDdp::Params params;
    params.block_size = 64;
    BasicDdp algo(params);
    EXPECT_TRUE(algo.ComputeScores(*ds, 20.0, metric, mr_opts, nullptr).ok());
    return counter.value();
  };
  uint64_t n400 = count_for(400);
  uint64_t n800 = count_for(800);
  double ratio = static_cast<double>(n800) / static_cast<double>(n400);
  EXPECT_NEAR(ratio, 4.0, 0.1);
}

TEST(IntegrationTest, LshDdpSavingsOverBasicDoNotShrinkWithScale) {
  // Fig. 10(c)'s operative claim at fixed distribution: LSH-DDP computes a
  // K-fold fewer distances than Basic-DDP (K ~= effective bucket count /
  // 2M), and the savings factor holds or grows as N grows. (On a fixed
  // distribution both costs are ~N^2; LSH's constant is much smaller.)
  // In-process executor pinned: the DistanceCounters are shared driver-side
  // state that forked workers cannot update.
  mr::Options mr_opts = FastMr();
  mr_opts.exec_mode = mr::ExecMode::kInProc;
  auto costs_for = [&](size_t n) {
    auto ds = gen::BigCrossLike(9, n);
    EXPECT_TRUE(ds.ok());
    auto dc = ChooseCutoff(*ds, CountingMetric());
    EXPECT_TRUE(dc.ok());
    DistanceCounter basic_counter, lsh_counter;
    BasicDdp::Params bp;
    bp.block_size = 64;
    BasicDdp basic(bp);
    EXPECT_TRUE(basic
                    .ComputeScores(*ds, *dc, CountingMetric(&basic_counter),
                                   mr_opts, nullptr)
                    .ok());
    LshDdp lsh;
    EXPECT_TRUE(lsh.ComputeScores(*ds, *dc, CountingMetric(&lsh_counter),
                                  mr_opts, nullptr)
                    .ok());
    return std::pair<uint64_t, uint64_t>{basic_counter.value(),
                                         lsh_counter.value()};
  };
  auto [basic400, lsh400] = costs_for(400);
  auto [basic800, lsh800] = costs_for(800);
  double savings400 = static_cast<double>(basic400) / lsh400;
  double savings800 = static_cast<double>(basic800) / lsh800;
  EXPECT_GT(savings400, 1.5);
  EXPECT_GT(savings800, 1.5);
  EXPECT_GT(savings800, 0.8 * savings400)
      << "savings must not collapse as N grows";
}

// ------------------------------------------------------- Repeatability

TEST(IntegrationTest, EndToEndRunsAreDeterministic) {
  auto ds = gen::KddLike(13, 300);
  ASSERT_TRUE(ds.ok());
  DdpOptions options;
  options.mr = FastMr();
  options.dc = 10.0;
  options.selector = PeakSelector::GammaGap();
  LshDdp lsh1, lsh2;
  auto a = RunDistributedDp(&lsh1, *ds, options);
  auto b = RunDistributedDp(&lsh2, *ds, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->scores.rho, b->scores.rho);
  EXPECT_EQ(a->scores.delta, b->scores.delta);
  EXPECT_EQ(a->clusters.assignment, b->clusters.assignment);
}

TEST(IntegrationTest, InjectedTaskFailuresDoNotChangeResults) {
  // Run the full LSH-DDP pipeline with aggressive task-failure injection:
  // every job's map and reduce tasks fail 30% of the time and are retried.
  // The final scores and clustering must be bit-identical to a clean run.
  auto ds = gen::KddLike(23, 250);
  ASSERT_TRUE(ds.ok());
  DdpOptions clean, faulty;
  clean.mr = faulty.mr = FastMr();
  faulty.mr.faults.map_failure_rate = 0.3;
  faulty.mr.faults.reduce_failure_rate = 0.3;
  faulty.mr.max_task_attempts = 16;
  clean.dc = faulty.dc = 10.0;
  clean.selector = faulty.selector = PeakSelector::TopK(5);
  LshDdp algo1, algo2;
  auto a = RunDistributedDp(&algo1, *ds, clean);
  auto b = RunDistributedDp(&algo2, *ds, faulty);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->scores.rho, b->scores.rho);
  EXPECT_EQ(a->scores.delta, b->scores.delta);
  EXPECT_EQ(a->clusters.assignment, b->clusters.assignment);
  // The faulty run must actually have retried something.
  uint64_t retries = 0;
  for (const auto& job : b->stats.jobs) {
    retries += job.map_task_retries + job.reduce_task_retries;
  }
  EXPECT_GT(retries, 0u);
}

TEST(IntegrationTest, WorkerCountDoesNotChangeResults) {
  auto ds = gen::KddLike(17, 250);
  ASSERT_TRUE(ds.ok());
  DdpOptions one, four;
  one.mr.num_workers = 1;
  one.mr.num_partitions = 8;
  four.mr.num_workers = 4;
  four.mr.num_partitions = 8;
  one.dc = four.dc = 10.0;
  one.selector = four.selector = PeakSelector::TopK(5);
  LshDdp algo1, algo2;
  auto a = RunDistributedDp(&algo1, *ds, one);
  auto b = RunDistributedDp(&algo2, *ds, four);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->scores.rho, b->scores.rho);
  EXPECT_EQ(a->scores.delta, b->scores.delta);
  EXPECT_EQ(a->clusters.assignment, b->clusters.assignment);
}

}  // namespace
}  // namespace ddp

// Chaos property test: every distributed DP variant, run under the full
// fault-injection gauntlet — lost attempts, stragglers with speculative
// backups, task deadlines, poisoned shuffle records under skip_bad_records,
// and a killed-and-resumed driver — must produce results bit-identical to a
// failure-free run. This is the determinism contract the whole recovery
// design rests on: tasks are pure functions of their input split, so no
// recovery path can change a single byte of output.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/driver.h"
#include "ddp/eddpc.h"
#include "ddp/lsh_ddp.h"
#include "mapreduce/checkpoint.h"
#include "obs/trace.h"

namespace ddp {
namespace {

std::unique_ptr<DistributedDpAlgorithm> MakeAlgorithm(
    const std::string& name) {
  if (name == "basic-ddp") {
    BasicDdp::Params p;
    p.block_size = 100;
    return std::make_unique<BasicDdp>(p);
  }
  if (name == "lsh-ddp") return std::make_unique<LshDdp>();
  EXPECT_EQ(name, "eddpc");
  return std::make_unique<Eddpc>();
}

DdpOptions BaseOptions() {
  DdpOptions o;
  o.mr.num_workers = 2;
  o.mr.num_partitions = 8;
  o.selector = PeakSelector::TopK(5);
  return o;
}

bool BitIdentical(const DdpRunResult& a, const DdpRunResult& b) {
  return a.dc == b.dc && a.scores.rho == b.scores.rho &&
         a.scores.delta == b.scores.delta &&
         a.scores.upslope == b.scores.upslope &&
         a.clusters.assignment == b.clusters.assignment &&
         a.clusters.peaks == b.clusters.peaks;
}

class ChaosTest : public ::testing::TestWithParam<const char*> {
 protected:
  Dataset MakeData() {
    auto ds = gen::KddLike(/*seed=*/5, 400);
    EXPECT_TRUE(ds.ok());
    return std::move(ds).value();
  }
};

TEST_P(ChaosTest, FullGauntletIsBitIdenticalToCleanRun) {
  Dataset dataset = MakeData();
  DdpOptions clean = BaseOptions();
  auto clean_algo = MakeAlgorithm(GetParam());
  auto baseline = RunDistributedDp(clean_algo.get(), dataset, clean);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  DdpOptions chaos = BaseOptions();
  chaos.mr.faults.map_failure_rate = 0.25;
  chaos.mr.faults.reduce_failure_rate = 0.25;
  chaos.mr.faults.straggler_rate = 0.15;
  chaos.mr.faults.straggler_slowdown = 10.0;
  chaos.mr.faults.straggler_min_seconds = 0.03;
  chaos.mr.faults.corruption_rate = 0.1;
  chaos.mr.faults.seed = 20260806;
  chaos.mr.max_task_attempts = 24;
  chaos.mr.speculative_execution = true;
  chaos.mr.skip_bad_records = true;
  chaos.mr.task_deadline_seconds = 10.0;

  auto algo = MakeAlgorithm(GetParam());
  auto result = RunDistributedDp(algo.get(), dataset, chaos);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(BitIdentical(*baseline, *result));
  EXPECT_GT(result->stats.TotalTaskRetries(), 0u);
  EXPECT_GT(result->stats.TotalSkippedRecords(), 0u);
}

TEST_P(ChaosTest, SweepOverRatesAndSeedsStaysBitIdentical) {
  Dataset dataset = MakeData();
  DdpOptions clean = BaseOptions();
  auto clean_algo = MakeAlgorithm(GetParam());
  auto baseline = RunDistributedDp(clean_algo.get(), dataset, clean);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const double failure_rates[] = {0.1, 0.3};
  const uint64_t seeds[] = {1, 99, 777};
  for (double rate : failure_rates) {
    for (uint64_t seed : seeds) {
      DdpOptions chaos = BaseOptions();
      chaos.mr.faults.map_failure_rate = rate;
      chaos.mr.faults.reduce_failure_rate = rate;
      chaos.mr.faults.corruption_rate = rate / 2;
      chaos.mr.faults.seed = seed;
      chaos.mr.max_task_attempts = 24;
      chaos.mr.skip_bad_records = true;
      auto algo = MakeAlgorithm(GetParam());
      auto result = RunDistributedDp(algo.get(), dataset, chaos);
      ASSERT_TRUE(result.ok())
          << GetParam() << " rate=" << rate << " seed=" << seed << ": "
          << result.status().ToString();
      EXPECT_TRUE(BitIdentical(*baseline, *result))
          << GetParam() << " diverged at rate=" << rate << " seed=" << seed;
    }
  }
}

TEST_P(ChaosTest, KilledDriverResumesBitIdentical) {
  Dataset dataset = MakeData();
  DdpOptions clean = BaseOptions();
  auto clean_algo = MakeAlgorithm(GetParam());
  auto baseline = RunDistributedDp(clean_algo.get(), dataset, clean);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       (std::string("ddp_chaos_resume_") + GetParam()))
          .string();
  std::filesystem::remove_all(dir);
  mr::CheckpointStore store(dir);

  DdpOptions resumable = BaseOptions();
  resumable.mr.checkpoint = &store;

  // Kill the driver after the first job checkpoints; everything later is
  // lost. The pipeline must surface the kill, not paper over it.
  store.SetKillAfter(1);
  auto killed_algo = MakeAlgorithm(GetParam());
  auto killed = RunDistributedDp(killed_algo.get(), dataset, resumable);
  ASSERT_FALSE(killed.ok());
  EXPECT_TRUE(killed.status().IsCancelled());

  // "New process": same store dir, kill switch off. Completed jobs replay
  // from disk; the rest re-run; the result matches the clean run exactly.
  store.SetKillAfter(-1);
  auto resumed_algo = MakeAlgorithm(GetParam());
  auto resumed = RunDistributedDp(resumed_algo.get(), dataset, resumable);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(BitIdentical(*baseline, *resumed));
  EXPECT_GT(resumed->stats.JobsLoadedFromCheckpoint(), 0u);
  std::filesystem::remove_all(dir);
}

// Observability under chaos: attempts killed by the task deadline (and
// speculative attempts cancelled before they start) must still flush their
// trace spans, marked cancelled — even though the worker pools that
// recorded them are destroyed before the snapshot is taken. The straggler
// dawdle (1.2s) deliberately exceeds the deadline (0.3s), so the monitor
// wakes the dawdlers and they self-report DeadlineExceeded; injection is a
// pure function of the seed, so the kills are deterministic. The deadline
// is sized so that legitimate attempts stay well under it even at
// sanitizer (TSan ~10x) slowdowns — this test runs under TSan in CI.
TEST(ChaosTraceTest, KilledAttemptSpansAreFlushedAndMarkedCancelled) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable();

  auto ds = gen::KddLike(/*seed=*/5, 400);
  ASSERT_TRUE(ds.ok());
  DdpOptions chaos = BaseOptions();
  chaos.mr.num_partitions = 4;  // fewer tasks: each kill waits a deadline
  chaos.mr.faults.straggler_rate = 0.3;
  chaos.mr.faults.straggler_slowdown = 1.0;
  chaos.mr.faults.straggler_min_seconds = 1.2;
  chaos.mr.faults.seed = 20260806;
  chaos.mr.task_deadline_seconds = 0.3;
  chaos.mr.max_task_attempts = 24;
  chaos.mr.speculative_execution = true;
  LshDdp algo;
  auto result = RunDistributedDp(&algo, *ds, chaos);
  recorder.Disable();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const uint64_t kills = result->stats.TotalDeadlineKills();
  EXPECT_GT(kills, 0u);

  // The MR pools are gone by now; the recorder must still hold every
  // attempt span they recorded.
  size_t attempts = 0;
  size_t cancelled = 0;
  for (const obs::TraceEvent& e : recorder.Snapshot()) {
    if (e.name == "map_attempt" || e.name == "reduce_attempt") {
      ++attempts;
      if (e.cancelled) ++cancelled;
    }
  }
  EXPECT_GT(attempts, 0u);
  EXPECT_GE(cancelled, kills);
  recorder.Clear();
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ChaosTest,
                         ::testing::Values("basic-ddp", "lsh-ddp", "eddpc"),
                         [](const auto& param_info) {
                           std::string n = param_info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace ddp

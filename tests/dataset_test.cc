#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "common/serde.h"
#include "dataset/binary_io.h"
#include "dataset/csv.h"
#include "dataset/dataset.h"
#include "dataset/distance.h"
#include "dataset/generators.h"
#include "dataset/sharded_io.h"

namespace ddp {
namespace {

// ---------------------------------------------------------------- Dataset

TEST(DatasetTest, AddAndAccess) {
  Dataset ds(2);
  PointId a = ds.Add(std::vector<double>{1.0, 2.0});
  PointId b = ds.Add(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.dim(), 2u);
  EXPECT_EQ(ds.point(0)[1], 2.0);
  EXPECT_EQ(ds.point(1)[0], 3.0);
}

TEST(DatasetTest, FromValuesValidatesMultiple) {
  auto ok = Dataset::FromValues(3, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);
  auto bad = Dataset::FromValues(3, {1, 2, 3, 4});
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  auto zero_dim = Dataset::FromValues(0, {});
  EXPECT_TRUE(zero_dim.status().IsInvalidArgument());
}

TEST(DatasetTest, LabelsTrackPoints) {
  Dataset ds(1);
  ds.Add(std::vector<double>{0.0}, 5);
  ds.Add(std::vector<double>{1.0}, 7);
  EXPECT_TRUE(ds.has_labels());
  EXPECT_EQ(ds.label(0), 5);
  EXPECT_EQ(ds.label(1), 7);
}

TEST(DatasetTest, UnlabeledReportsMinusOne) {
  Dataset ds(1);
  ds.Add(std::vector<double>{0.0});
  EXPECT_FALSE(ds.has_labels());
  EXPECT_EQ(ds.label(0), -1);
}

TEST(DatasetTest, BoundingBox) {
  Dataset ds(2);
  ds.Add(std::vector<double>{-1.0, 5.0});
  ds.Add(std::vector<double>{3.0, -2.0});
  std::vector<double> lo, hi;
  ASSERT_TRUE(ds.BoundingBox(&lo, &hi).ok());
  EXPECT_EQ(lo[0], -1.0);
  EXPECT_EQ(lo[1], -2.0);
  EXPECT_EQ(hi[0], 3.0);
  EXPECT_EQ(hi[1], 5.0);
}

TEST(DatasetTest, BoundingBoxEmptyErrors) {
  Dataset ds(2);
  std::vector<double> lo, hi;
  EXPECT_TRUE(ds.BoundingBox(&lo, &hi).IsInvalidArgument());
}

TEST(DatasetTest, SubsetCarriesLabels) {
  Dataset ds(1);
  for (int i = 0; i < 5; ++i) {
    ds.Add(std::vector<double>{static_cast<double>(i)}, i * 10);
  }
  std::vector<PointId> ids = {4, 0, 2};
  Dataset sub = ds.Subset(ids);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.point(0)[0], 4.0);
  EXPECT_EQ(sub.label(0), 40);
  EXPECT_EQ(sub.label(2), 20);
}

// --------------------------------------------------------------- Distance

TEST(DistanceTest, EuclideanKnownValues) {
  std::vector<double> a = {0.0, 0.0};
  std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, b), 25.0);
}

TEST(DistanceTest, CountingMetricCountsEvaluations) {
  DistanceCounter counter;
  CountingMetric metric(&counter);
  std::vector<double> a = {1.0}, b = {2.0};
  metric.Distance(a, b);
  metric.SquaredDistance(a, b);
  metric.AddEvaluations(10);
  EXPECT_EQ(counter.value(), 12u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(DistanceTest, NullCounterIsSafe) {
  CountingMetric metric;
  std::vector<double> a = {1.0}, b = {4.0};
  EXPECT_DOUBLE_EQ(metric.Distance(a, b), 3.0);
  metric.AddEvaluations(5);  // no crash
}

TEST(DistanceTest, MetricSymmetryAndIdentity) {
  CountingMetric metric;
  std::vector<double> a = {1.0, -2.0, 0.5}, b = {0.0, 4.0, 2.5};
  EXPECT_DOUBLE_EQ(metric.Distance(a, b), metric.Distance(b, a));
  EXPECT_DOUBLE_EQ(metric.Distance(a, a), 0.0);
}

// -------------------------------------------------------------------- CSV

TEST(CsvTest, ParseBasic) {
  auto ds = ParseCsv("1.0,2.0\n3.0,4.0\n");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ(ds->dim(), 2u);
  EXPECT_EQ(ds->point(1)[1], 4.0);
}

TEST(CsvTest, ParseMixedSeparatorsAndComments) {
  auto ds = ParseCsv("# header comment\n1 2\t3\n\n4,5,6\n");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ(ds->dim(), 3u);
}

TEST(CsvTest, ParseWithLabelColumn) {
  CsvOptions opts;
  opts.last_column_is_label = true;
  auto ds = ParseCsv("1.0,2.0,0\n3.0,4.0,1\n", opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dim(), 2u);
  EXPECT_TRUE(ds->has_labels());
  EXPECT_EQ(ds->label(1), 1);
}

TEST(CsvTest, InconsistentWidthIsError) {
  auto ds = ParseCsv("1,2\n1,2,3\n");
  EXPECT_TRUE(ds.status().IsIoError());
}

TEST(CsvTest, MalformedNumberIsError) {
  auto ds = ParseCsv("1,abc\n");
  EXPECT_TRUE(ds.status().IsIoError());
}

TEST(CsvTest, EmptyInputIsError) {
  EXPECT_TRUE(ParseCsv("").status().IsIoError());
  EXPECT_TRUE(ParseCsv("# only comments\n").status().IsIoError());
}

TEST(CsvTest, FileRoundTrip) {
  Dataset ds(2);
  ds.Add(std::vector<double>{1.5, -2.25}, 0);
  ds.Add(std::vector<double>{1e-12, 3e8}, 1);
  std::string path =
      (std::filesystem::temp_directory_path() / "ddp_csv_test.csv").string();
  ASSERT_TRUE(WriteCsvFile(path, ds).ok());
  CsvOptions opts;
  opts.last_column_is_label = true;
  auto loaded = ReadCsvFile(path, opts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->point(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(loaded->point(1)[1], 3e8);
  EXPECT_EQ(loaded->label(1), 1);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/nowhere.csv").status().IsIoError());
}

// -------------------------------------------------------------- Binary IO

TEST(BinaryIoTest, RoundTripLabeled) {
  Dataset ds(3);
  ds.Add(std::vector<double>{1.0, -2.5, 3e100}, 4);
  ds.Add(std::vector<double>{0.0, 1e-300, -0.0}, -1);
  std::string bytes = SerializeDataset(ds);
  auto loaded = DeserializeDataset(bytes);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->values(), ds.values());
  EXPECT_EQ(loaded->labels(), ds.labels());
}

TEST(BinaryIoTest, RoundTripUnlabeled) {
  Dataset ds(2);
  ds.Add(std::vector<double>{1.0, 2.0});
  auto loaded = DeserializeDataset(SerializeDataset(ds));
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->has_labels());
  EXPECT_EQ(loaded->values(), ds.values());
}

TEST(BinaryIoTest, RejectsBadMagicAndTruncation) {
  Dataset ds(1);
  ds.Add(std::vector<double>{1.0});
  std::string bytes = SerializeDataset(ds);
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_TRUE(DeserializeDataset(bad).status().IsIoError());
  EXPECT_TRUE(
      DeserializeDataset(bytes.substr(0, bytes.size() - 3)).status().IsIoError());
  EXPECT_TRUE(DeserializeDataset(bytes + "junk").status().IsIoError());
}

TEST(BinaryIoTest, FileRoundTripMatchesGenerator) {
  auto ds = gen::KddLike(9, 300);
  ASSERT_TRUE(ds.ok());
  std::string path =
      (std::filesystem::temp_directory_path() / "ddp_bin_test.ddpb").string();
  ASSERT_TRUE(WriteBinaryFile(path, *ds).ok());
  auto loaded = ReadBinaryFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->values(), ds->values());
  EXPECT_EQ(loaded->labels(), ds->labels());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadBinaryFile("/nonexistent/x.ddpb").status().IsIoError());
}

TEST(BinaryIoTest, ChecksumCatchesFlippedBit) {
  Dataset ds(2);
  ds.Add(std::vector<double>{1.0, 2.0}, 3);
  ds.Add(std::vector<double>{4.0, 5.0}, 6);
  std::string bytes = SerializeDataset(ds);
  ASSERT_TRUE(DeserializeDataset(bytes).ok());
  // Flip one bit in the value block: a corruption v1 would load silently.
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x20;
  Status st = DeserializeDataset(corrupt).status();
  EXPECT_TRUE(st.IsIoError());
  EXPECT_NE(st.message().find("checksum"), std::string::npos)
      << st.ToString();
}

TEST(BinaryIoTest, StillReadsVersion1Files) {
  // Hand-crafted v1 image (no CRC trailer), as PR-seed-era writers emitted.
  BufferWriter w;
  w.PutRaw("DDPB", 4);
  w.PutVarint32(1);  // version
  w.PutVarint64(2);  // dim
  w.PutVarint64(1);  // n
  w.PutByte(1);      // labeled
  w.PutDouble(1.5);
  w.PutDouble(-2.5);
  w.PutSignedVarint64(-7);
  auto loaded = DeserializeDataset(w.data());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->point(0)[0], 1.5);
  EXPECT_EQ(loaded->point(0)[1], -2.5);
  EXPECT_EQ(loaded->label(0), -7);
}

TEST(BinaryIoTest, PeekReadsHeaderOnly) {
  auto ds = gen::KddLike(3, 200);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  std::string path =
      (std::filesystem::temp_directory_path() / "ddp_peek_test.ddpb").string();
  ASSERT_TRUE(WriteBinaryFile(path, *ds).ok());
  auto info = PeekBinaryFileInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, 2u);
  EXPECT_EQ(info->dim, ds->dim());
  EXPECT_EQ(info->num_points, ds->size());
  EXPECT_EQ(info->has_labels, ds->has_labels());
  std::remove(path.c_str());
}

// ------------------------------------------------------------- Sharded IO

class ShardedIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "ddp_sharded_test")
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ShardedIoTest, WriteReadRoundTripPreservesGlobalOrder) {
  auto ds = gen::KddLike(11, 257);  // deliberately not a multiple of 50
  ASSERT_TRUE(ds.ok());
  auto paths = WriteShardedDataset(dir_ + "/kdd", *ds, 50);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  EXPECT_EQ(paths->size(), 6u);  // 5 full shards + 7-point remainder

  auto reader = ShardedDatasetReader::OpenDirectory(dir_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->dim(), ds->dim());
  EXPECT_EQ(reader->total_points(), ds->size());
  EXPECT_EQ(reader->num_shards(), 6u);
  EXPECT_TRUE(reader->has_labels());

  // ReadAll reproduces the unsharded dataset exactly, ids included.
  auto all = reader->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->values(), ds->values());
  EXPECT_EQ(all->labels(), ds->labels());

  // Streaming visits points in global id order with correct bases.
  uint64_t expect_base = 0;
  Status st = reader->ForEachShard(
      [&](const Dataset& shard, uint64_t base) -> Status {
        EXPECT_EQ(base, expect_base);
        for (PointId i = 0; i < shard.size(); ++i) {
          EXPECT_EQ(shard.point(i)[0], ds->point(base + i)[0]);
        }
        expect_base += shard.size();
        return Status::OK();
      });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(expect_base, ds->size());
}

TEST_F(ShardedIoTest, ContentDigestIsStableAndByteSensitive) {
  auto ds = gen::KddLike(11, 120);
  ASSERT_TRUE(ds.ok());
  auto paths = WriteShardedDataset(dir_ + "/kdd", *ds, 50);
  ASSERT_TRUE(paths.ok());

  auto reader = ShardedDatasetReader::OpenDirectory(dir_);
  ASSERT_TRUE(reader.ok());
  auto digest = reader->ContentDigest();
  ASSERT_TRUE(digest.ok()) << digest.status().ToString();
  // "crc32:<8 hex>.<total bytes>" — rendered, greppable, fixed-width crc.
  EXPECT_EQ(digest->rfind("crc32:", 0), 0u);
  EXPECT_EQ(digest->find('.'), 14u);

  // The free function over the directory agrees with the open reader, and
  // a second pass is stable.
  auto again = DatasetContentDigest(dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *digest);

  // A single-byte flip in any shard changes the digest.
  {
    std::fstream f((*paths)[1],
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(32);
    char b = 0;
    f.seekg(32);
    f.get(b);
    f.seekp(32);
    f.put(static_cast<char>(b ^ 1));
  }
  auto flipped = DatasetContentDigest(dir_);
  ASSERT_TRUE(flipped.ok());
  EXPECT_NE(*flipped, *digest);

  // Unreadable path errors instead of digesting nothing.
  EXPECT_FALSE(DatasetContentDigest(dir_ + "/missing.ddpb").ok());
}

TEST_F(ShardedIoTest, RefusesDimensionMismatch) {
  Dataset two(2);
  two.Add(std::vector<double>{1.0, 2.0});
  Dataset three(3);
  three.Add(std::vector<double>{1.0, 2.0, 3.0});
  ASSERT_TRUE(WriteBinaryFile(dir_ + "/a-00000.ddpb", two).ok());
  ASSERT_TRUE(WriteBinaryFile(dir_ + "/a-00001.ddpb", three).ok());
  Status st = ShardedDatasetReader::OpenDirectory(dir_).status();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("dimension"), std::string::npos)
      << st.ToString();
}

TEST_F(ShardedIoTest, RefusesLabelFlagMismatch) {
  Dataset labeled(2);
  labeled.Add(std::vector<double>{1.0, 2.0}, 1);
  Dataset unlabeled(2);
  unlabeled.Add(std::vector<double>{3.0, 4.0});
  ASSERT_TRUE(WriteBinaryFile(dir_ + "/b-00000.ddpb", labeled).ok());
  ASSERT_TRUE(WriteBinaryFile(dir_ + "/b-00001.ddpb", unlabeled).ok());
  Status st = ShardedDatasetReader::OpenDirectory(dir_).status();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("unlabeled"), std::string::npos)
      << st.ToString();
}

TEST_F(ShardedIoTest, EmptyDirectoryIsAnError) {
  EXPECT_FALSE(ShardedDatasetReader::OpenDirectory(dir_).ok());
  EXPECT_FALSE(ShardedDatasetReader::Open({}).ok());
}

// --------------------------------------------------------------- Generators

TEST(GeneratorsTest, GaussianMixtureShapeAndLabels) {
  auto ds = gen::GaussianMixture(300, 5, 3, 100.0, 1.0, 1);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 300u);
  EXPECT_EQ(ds->dim(), 5u);
  ASSERT_TRUE(ds->has_labels());
  std::set<int> labels(ds->labels().begin(), ds->labels().end());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(GeneratorsTest, GaussianMixtureValidatesArgs) {
  EXPECT_FALSE(gen::GaussianMixture(0, 2, 2, 1, 1, 1).ok());
  EXPECT_FALSE(gen::GaussianMixture(10, 0, 2, 1, 1, 1).ok());
  EXPECT_FALSE(gen::GaussianMixture(10, 2, 0, 1, 1, 1).ok());
}

TEST(GeneratorsTest, AggregationLikeMatchesPaperShape) {
  auto ds = gen::AggregationLike(42);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 788u);
  EXPECT_EQ(ds->dim(), 2u);
  std::set<int> labels(ds->labels().begin(), ds->labels().end());
  EXPECT_EQ(labels.size(), 7u);  // seven ground-truth clusters
}

TEST(GeneratorsTest, AggregationLikeDeterministicInSeed) {
  auto a = gen::AggregationLike(42);
  auto b = gen::AggregationLike(42);
  auto c = gen::AggregationLike(43);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->values(), b->values());
  EXPECT_NE(a->values(), c->values());
}

TEST(GeneratorsTest, S2LikeShape) {
  auto ds = gen::S2Like(1, 5000);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 5000u);
  EXPECT_EQ(ds->dim(), 2u);
  std::set<int> labels(ds->labels().begin(), ds->labels().end());
  EXPECT_EQ(labels.size(), 15u);
  // Coordinates roughly in the S-set range.
  std::vector<double> lo, hi;
  ASSERT_TRUE(ds->BoundingBox(&lo, &hi).ok());
  EXPECT_GT(hi[0] - lo[0], 1e5);
}

TEST(GeneratorsTest, FacialLikeIsHighDimensional) {
  auto ds = gen::FacialLike(1, 500);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dim(), 300u);
  EXPECT_EQ(ds->size(), 500u);
}

TEST(GeneratorsTest, KddLikeHasSkewedClusterSizes) {
  auto ds = gen::KddLike(1, 4000);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dim(), 74u);
  std::vector<size_t> sizes(32, 0);
  for (int l : ds->labels()) ++sizes[static_cast<size_t>(l)];
  size_t biggest = 0, smallest = SIZE_MAX;
  for (size_t s : sizes) {
    if (s == 0) continue;
    biggest = std::max(biggest, s);
    smallest = std::min(smallest, s);
  }
  EXPECT_GT(biggest, 4 * smallest);  // power-law skew
}

TEST(GeneratorsTest, SpatialLikeDimensionsAndRoads) {
  auto ds = gen::SpatialLike(1, 2400);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dim(), 4u);
  std::set<int> labels(ds->labels().begin(), ds->labels().end());
  EXPECT_EQ(labels.size(), 40u);  // one label per road
}

TEST(GeneratorsTest, BigCrossLikeHasProductClusters) {
  auto ds = gen::BigCrossLike(1, 3000);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dim(), 57u);
  std::set<int> labels(ds->labels().begin(), ds->labels().end());
  EXPECT_GT(labels.size(), 30u);  // up to 7*7 product clusters
  EXPECT_LE(labels.size(), 49u);
}

TEST(GeneratorsTest, ShapedSetsHaveExpectedStructure) {
  auto spiral = gen::SpiralLike(1);
  ASSERT_TRUE(spiral.ok());
  EXPECT_EQ(spiral->size(), 312u);
  std::set<int> arms(spiral->labels().begin(), spiral->labels().end());
  EXPECT_EQ(arms.size(), 3u);

  auto flame = gen::FlameLike(1);
  ASSERT_TRUE(flame.ok());
  EXPECT_EQ(flame->size(), 240u);
  std::set<int> flame_labels(flame->labels().begin(), flame->labels().end());
  EXPECT_EQ(flame_labels.size(), 2u);

  auto r15 = gen::R15Like(1);
  ASSERT_TRUE(r15.ok());
  EXPECT_EQ(r15->size(), 600u);
  std::set<int> r15_labels(r15->labels().begin(), r15->labels().end());
  EXPECT_EQ(r15_labels.size(), 15u);
}

TEST(GeneratorsTest, SpiralArmsAreInterleavedByRadius) {
  // Arms share the same radius range, so no radial threshold separates
  // them — the property that defeats centroid methods.
  auto ds = gen::SpiralLike(3, 600);
  ASSERT_TRUE(ds.ok());
  double min_r[3] = {1e9, 1e9, 1e9}, max_r[3] = {0, 0, 0};
  for (size_t i = 0; i < ds->size(); ++i) {
    std::span<const double> p = ds->point(static_cast<PointId>(i));
    double r = std::sqrt(p[0] * p[0] + p[1] * p[1]);
    int arm = ds->label(static_cast<PointId>(i));
    min_r[arm] = std::min(min_r[arm], r);
    max_r[arm] = std::max(max_r[arm], r);
  }
  // All three arms span overlapping radius ranges (radius alone cannot
  // separate them).
  for (int a = 0; a < 3; ++a) {
    EXPECT_LT(min_r[a], 16.0);
    EXPECT_GT(max_r[a], 22.0);
  }
}

TEST(GeneratorsTest, TooSmallSizesAreRejected) {
  EXPECT_FALSE(gen::AggregationLike(1, 10).ok());
  EXPECT_FALSE(gen::S2Like(1, 10).ok());
  EXPECT_FALSE(gen::FacialLike(1, 10).ok());
  EXPECT_FALSE(gen::KddLike(1, 10).ok());
  EXPECT_FALSE(gen::SpatialLike(1, 10).ok());
  EXPECT_FALSE(gen::BigCrossLike(1, 10).ok());
  EXPECT_FALSE(gen::SpiralLike(1, 5).ok());
  EXPECT_FALSE(gen::FlameLike(1, 5).ok());
  EXPECT_FALSE(gen::R15Like(1, 5).ok());
}

TEST(GeneratorsTest, PerformanceSuiteListsFigure10Sets) {
  auto suite = gen::PerformanceSuite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_STREQ(suite[0].name, "Facial");
  EXPECT_STREQ(suite[3].name, "BigCross500K");
  for (const auto& d : suite) {
    auto ds = d.make(7, 200 > d.default_n ? d.default_n : 200);
    ASSERT_TRUE(ds.ok()) << d.name;
    EXPECT_EQ(ds->dim(), d.dim) << d.name;
  }
}

}  // namespace
}  // namespace ddp

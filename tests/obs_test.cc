// Unit tests for the observability subsystem (src/obs/): JSON writer
// escaping, trace recording + Chrome trace-event export, metrics registry
// snapshots, histogram quantiles, heartbeat, procfs sampling, and the
// counters JSON serialization. The exported documents are re-parsed with a
// minimal JSON reader to prove they are well-formed, and trace nesting is
// checked to be properly bracketed per thread.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mapreduce/counters.h"
#include "obs/heartbeat.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/proc_stats.h"
#include "obs/session.h"
#include "obs/trace.h"

namespace ddp {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader: enough to re-parse our own exports. Numbers are kept
// as doubles; any syntax error fails the parse.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            // Decoded only far enough for round-trip checks: keep the
            // escaped form verbatim.
            out->append("\\u");
            out->append(text_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->object.emplace(std::move(key), std::move(v));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->array.push_back(std::move(v));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return ParseLiteral("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return ParseLiteral("null");
    }
    // number
    size_t start = pos_;
    if (c == '-' || c == '+') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(std::string(text_.substr(start, pos_ - start))
                                  .c_str(),
                              nullptr);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

JsonValue MustParse(const std::string& text) {
  JsonValue v;
  JsonParser parser(text);
  EXPECT_TRUE(parser.Parse(&v)) << "invalid JSON: " << text.substr(0, 200);
  return v;
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriterTest, WritesNestedDocumentWithEscapes) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("name", std::string_view("quote\" slash\\ newline\n tab\t"));
  w.Field("count", uint64_t{42});
  w.Field("neg", int64_t{-7});
  w.Field("ratio", 0.5);
  w.Field("flag", true);
  w.Key("missing");
  w.Null();
  w.Key("list");
  w.BeginArray();
  w.Uint(1);
  w.String("two");
  w.BeginObject();
  w.Field("deep", uint64_t{3});
  w.EndObject();
  w.EndArray();
  w.EndObject();

  JsonValue v = MustParse(w.str());
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v.Get("name")->string, "quote\" slash\\ newline\n tab\t");
  EXPECT_EQ(v.Get("count")->number, 42.0);
  EXPECT_EQ(v.Get("neg")->number, -7.0);
  EXPECT_EQ(v.Get("flag")->boolean, true);
  EXPECT_EQ(v.Get("missing")->kind, JsonValue::Kind::kNull);
  ASSERT_EQ(v.Get("list")->array.size(), 3u);
  EXPECT_EQ(v.Get("list")->array[2].Get("deep")->number, 3.0);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(1.5);
  w.EndArray();
  JsonValue v = MustParse(w.str());
  ASSERT_EQ(v.array.size(), 3u);
  EXPECT_EQ(v.array[0].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.array[1].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.array[2].number, 1.5);
}

// ---------------------------------------------------------------------------
// Trace recorder + Chrome export

TEST(TraceTest, DisabledSpansRecordNothing) {
  obs::TraceRecorder recorder;
  {
    obs::Span span(recorder, "test", "ignored");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceTest, NestedAndThreadedSpansExportWellFormed) {
  obs::TraceRecorder recorder;
  recorder.Enable();
  {
    obs::Span outer(recorder, "test", "outer");
    outer.AddArg("job", "demo");
    {
      obs::Span inner(recorder, "test", "inner");
      inner.AddArg("n", uint64_t{7});
    }
    obs::Span cancelled_span(recorder, "test", "doomed");
    cancelled_span.MarkCancelled();
  }
  std::thread worker([&recorder] {
    obs::Span span(recorder, "test", "worker");
    span.AddArg("ratio", 0.25);
  });
  worker.join();  // buffer must survive this thread's exit
  recorder.Disable();

  std::vector<obs::TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Sorted by start; the outer span starts first.
  EXPECT_EQ(events[0].name, "outer");

  JsonValue doc = MustParse(recorder.ToChromeTraceJson());
  const JsonValue* trace_events = doc.Get("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->array.size(), 4u);

  bool saw_cancelled = false;
  for (const JsonValue& e : trace_events->array) {
    EXPECT_EQ(e.Get("ph")->string, "X");
    EXPECT_NE(e.Get("name"), nullptr);
    EXPECT_NE(e.Get("ts"), nullptr);
    EXPECT_NE(e.Get("dur"), nullptr);
    EXPECT_NE(e.Get("tid"), nullptr);
    if (e.Get("name")->string == "doomed") {
      const JsonValue* args = e.Get("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->Get("cancelled")->boolean, true);
      saw_cancelled = true;
    }
    if (e.Get("name")->string == "inner") {
      EXPECT_EQ(e.Get("args")->Get("n")->number, 7.0);
    }
  }
  EXPECT_TRUE(saw_cancelled);

  // Per-thread nesting must be properly bracketed: any two spans on one tid
  // are either disjoint or one contains the other.
  struct Interval {
    double start, end;
  };
  std::map<double, std::vector<Interval>> by_tid;
  for (const JsonValue& e : trace_events->array) {
    by_tid[e.Get("tid")->number].push_back(
        {e.Get("ts")->number, e.Get("ts")->number + e.Get("dur")->number});
  }
  for (const auto& [tid, intervals] : by_tid) {
    for (size_t i = 0; i < intervals.size(); ++i) {
      for (size_t j = i + 1; j < intervals.size(); ++j) {
        const Interval& a = intervals[i];
        const Interval& b = intervals[j];
        const bool disjoint = a.end <= b.start || b.end <= a.start;
        const bool a_in_b = b.start <= a.start && a.end <= b.end;
        const bool b_in_a = a.start <= b.start && b.end <= a.end;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "tid " << tid << ": overlapping but not nested intervals ["
            << a.start << "," << a.end << ") and [" << b.start << ","
            << b.end << ")";
      }
    }
  }
}

TEST(TraceTest, EventCapDropsAndCounts) {
  obs::TraceRecorder recorder;
  recorder.SetMaxEvents(3);
  recorder.Enable();
  for (int i = 0; i < 10; ++i) {
    obs::Span span(recorder, "test", "e");
  }
  recorder.Disable();
  EXPECT_EQ(recorder.Snapshot().size(), 3u);
  EXPECT_EQ(recorder.dropped_events(), 7u);
  JsonValue doc = MustParse(recorder.ToChromeTraceJson());
  EXPECT_EQ(doc.Get("otherData")->Get("dropped_events")->number, 7.0);
}

TEST(TraceTest, EndIsIdempotentAndStopsTheClock) {
  obs::TraceRecorder recorder;
  recorder.Enable();
  obs::Span span(recorder, "test", "early_end");
  span.End();
  span.End();  // no double record
  recorder.Disable();
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, CountersGaugesHistogramsSnapshotAsJson) {
  obs::MetricsRegistry registry;
  registry.GetCounter("test.count")->Add(3);
  registry.GetCounter("test.count")->Add(2);
  registry.GetGauge("test.gauge")->Set(1.25);
  obs::Histogram* hist = registry.GetHistogram("test.lat");
  for (uint64_t v = 1; v <= 1000; ++v) hist->Record(v);

  obs::Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_GT(snap.p50, 0.0);
  EXPECT_GT(snap.p95, 0.0);
  EXPECT_GT(snap.p99, 0.0);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  // Log-bucketed interpolation: the medians land within a 2x bracket.
  EXPECT_GE(snap.p50, 256.0);
  EXPECT_LE(snap.p50, 1024.0);

  JsonValue doc = MustParse(registry.ToJson());
  EXPECT_EQ(doc.Get("counters")->Get("test.count")->number, 5.0);
  EXPECT_EQ(doc.Get("gauges")->Get("test.gauge")->number, 1.25);
  const JsonValue* lat = doc.Get("histograms")->Get("test.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Get("count")->number, 1000.0);
  EXPECT_GT(lat->Get("p99")->number, 0.0);
}

TEST(MetricsTest, GlobalMacrosAccumulate) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t before = registry.GetCounter("obs_test.macro")->value();
  for (int i = 0; i < 10; ++i) DDP_METRIC_COUNTER_ADD("obs_test.macro", 2);
  EXPECT_EQ(registry.GetCounter("obs_test.macro")->value(), before + 20);
  DDP_METRIC_HISTOGRAM_SECONDS("obs_test.macro_seconds", 0.001);
  EXPECT_GE(registry.GetHistogram("obs_test.macro_seconds")->Snap().count, 1u);
}

TEST(MetricsTest, HistogramSecondsRecordsMicros) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram("sec");
  hist->RecordSeconds(0.002);  // 2000 us
  obs::Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.p50, 1024.0);
  EXPECT_LE(snap.p50, 4096.0);
}

// ---------------------------------------------------------------------------
// Heartbeat + proc stats

TEST(HeartbeatTest, BeatsAndStopsCleanly) {
  int calls = 0;
  {
    obs::ProgressHeartbeat hb(0.02, [&calls] {
      ++calls;
      return std::string("tick");
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }
  EXPECT_GT(calls, 0);
}

TEST(HeartbeatTest, ZeroIntervalStartsNoThread) {
  obs::ProgressHeartbeat hb(0.0, [] { return std::string("never"); });
  EXPECT_EQ(hb.beats(), 0u);
}

TEST(ProcStatsTest, ReportsResidentSetOnLinux) {
  // /proc exists on every platform this repo targets.
  EXPECT_GT(obs::PeakRssBytes(), 0u);
  EXPECT_GT(obs::CurrentRssBytes(), 0u);
  obs::SampleProcessGauges();
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetGauge("process.peak_rss_bytes")
                ->value(),
            0.0);
}

// ---------------------------------------------------------------------------
// Session export + counters JSON

TEST(SessionTest, WritesTraceAndMetricsFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "ddp_obs_test";
  std::filesystem::create_directories(dir);
  const std::string trace_path = (dir / "trace.json").string();
  const std::string metrics_path = (dir / "metrics.json").string();

  obs::ExportOptions options;
  options.trace_path = trace_path;
  options.metrics_path = metrics_path;
  {
    obs::Session session(options);
    EXPECT_TRUE(obs::TraceRecorder::Global().enabled());
    {
      // Must close before Finish(): spans record on scope exit.
      DDP_TRACE_SCOPE("test", "session_span");
    }
    DDP_METRIC_COUNTER_ADD("obs_test.session", 1);
    ASSERT_TRUE(session.Finish().ok());
    ASSERT_TRUE(session.Finish().ok());  // idempotent
  }
  EXPECT_FALSE(obs::TraceRecorder::Global().enabled());

  std::stringstream trace_text;
  trace_text << std::ifstream(trace_path).rdbuf();
  JsonValue trace = MustParse(trace_text.str());
  ASSERT_NE(trace.Get("traceEvents"), nullptr);
  bool found = false;
  for (const JsonValue& e : trace.Get("traceEvents")->array) {
    if (e.Get("name")->string == "session_span") found = true;
  }
  EXPECT_TRUE(found);

  std::stringstream metrics_text;
  metrics_text << std::ifstream(metrics_path).rdbuf();
  JsonValue metrics = MustParse(metrics_text.str());
  EXPECT_GE(metrics.Get("counters")->Get("obs_test.session")->number, 1.0);
  // Finish() samples process gauges before writing.
  EXPECT_GT(metrics.Get("gauges")->Get("process.peak_rss_bytes")->number, 0.0);

  obs::TraceRecorder::Global().Clear();
  std::filesystem::remove_all(dir);
}

TEST(CountersJsonTest, JobAndRunStatsRoundTrip) {
  mr::JobCounters j;
  j.job_name = "demo-job \"quoted\"";
  j.map_input_records = 100;
  j.shuffle_bytes = 4096;
  j.group_size_log2_histogram = {5, 3, 0, 1};
  j.total_seconds = 0.5;
  JsonValue job = MustParse(j.ToJson());
  EXPECT_EQ(job.Get("job_name")->string, "demo-job \"quoted\"");
  EXPECT_EQ(job.Get("shuffle_bytes")->number, 4096.0);
  ASSERT_EQ(job.Get("group_size_log2_histogram")->array.size(), 4u);
  EXPECT_EQ(job.Get("group_size_log2_histogram")->array[1].number, 3.0);

  mr::RunStats stats;
  stats.Add(j);
  mr::JobCounters j2;
  j2.job_name = "second";
  j2.shuffle_bytes = 1024;
  stats.Add(j2);
  JsonValue run = MustParse(stats.ToJson());
  ASSERT_EQ(run.Get("jobs")->array.size(), 2u);
  EXPECT_EQ(run.Get("totals")->Get("shuffle_bytes")->number, 5120.0);
  EXPECT_EQ(run.Get("totals")->Get("jobs")->number, 2.0);
}

}  // namespace
}  // namespace ddp

// Remote worker subsystem suite (mapreduce/remote_worker.h): the wire
// payloads that carry the registered-job model (extended hello with
// capability flags, kJobSetup, kTaskAssign), the process-global JobRegistry,
// and — the contract the subsystem exists for — multi-host bit-identity:
// the same seed and dataset run under inproc, fork-pipe, fork-tcp, and
// remote execution (two separately exec'd ddp_worker processes on
// localhost) must produce byte-identical assignments for all three DDP
// drivers, including when one remote worker dies mid-shuffle and when a
// 4 KiB spill budget forces every task out of core.
//
// Remote/fork tests skip themselves where forked workers are unsupported
// (ForkExecutionSupported() == false, e.g. under TSan).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/driver.h"
#include "ddp/eddpc.h"
#include "ddp/lsh_ddp.h"
#include "ddp/remote_jobs.h"
#include "mapreduce/remote_worker.h"
#include "mapreduce/supervisor.h"

#ifndef DDP_WORKER_BIN
#error "DDP_WORKER_BIN must point at the ddp_worker executable"
#endif

namespace ddp {
namespace {

// ------------------------------------------------------------- wire codecs

TEST(RemoteCodecTest, HelloFlagsRoundTripAndBackCompat) {
  mr::HelloMsg hello;
  hello.worker_id = (uint64_t{1} << 63) | 4242;
  hello.generation = 3;
  hello.flags = mr::kWorkerHelloRemote;
  mr::HelloMsg decoded;
  ASSERT_TRUE(mr::HelloMsg::Decode(hello.Encode(), &decoded).ok());
  EXPECT_EQ(decoded.worker_id, hello.worker_id);
  EXPECT_EQ(decoded.generation, hello.generation);
  EXPECT_EQ(decoded.flags, mr::kWorkerHelloRemote);

  // A pre-flags hello (worker_id + generation only) must still decode, with
  // flags defaulting to 0 — fork workers keep their old wire bytes.
  std::string legacy;
  BufferWriter w(&legacy);
  w.PutVarint64(17);
  w.PutVarint64(2);
  ASSERT_TRUE(mr::HelloMsg::Decode(legacy, &decoded).ok());
  EXPECT_EQ(decoded.worker_id, 17u);
  EXPECT_EQ(decoded.generation, 2u);
  EXPECT_EQ(decoded.flags, 0u);

  // A flags == 0 hello encodes byte-identically to the legacy form.
  mr::HelloMsg plain;
  plain.worker_id = 17;
  plain.generation = 2;
  EXPECT_EQ(plain.Encode(), legacy);
}

TEST(RemoteCodecTest, JobSetupRoundTrip) {
  mr::JobSetupMsg setup;
  setup.job_id = "lsh-rho-local";
  setup.job_name = "assign-jump-3";
  setup.phase = 1;
  setup.ctx = std::string("\x00\x01\xff"
                          "ctx",
                          6);
  setup.num_partitions = 8;
  setup.memory_budget_bytes = 4096;
  setup.spill_dir = "/tmp/spill";
  setup.skip_bad_records = true;
  setup.fault_seed = 20260808;
  setup.map_failure_rate = 0.25;
  setup.worker_crash_rate = 0.125;
  setup.straggler_slowdown = 3.0;

  mr::JobSetupMsg decoded;
  ASSERT_TRUE(mr::JobSetupMsg::Decode(setup.Encode(), &decoded).ok());
  EXPECT_EQ(decoded.job_id, setup.job_id);
  EXPECT_EQ(decoded.job_name, setup.job_name);
  EXPECT_EQ(decoded.phase, setup.phase);
  EXPECT_EQ(decoded.ctx, setup.ctx);
  EXPECT_EQ(decoded.num_partitions, setup.num_partitions);
  EXPECT_EQ(decoded.memory_budget_bytes, setup.memory_budget_bytes);
  EXPECT_EQ(decoded.spill_dir, setup.spill_dir);
  EXPECT_EQ(decoded.skip_bad_records, setup.skip_bad_records);
  EXPECT_EQ(decoded.fault_seed, setup.fault_seed);
  EXPECT_EQ(decoded.map_failure_rate, setup.map_failure_rate);
  EXPECT_EQ(decoded.worker_crash_rate, setup.worker_crash_rate);
  EXPECT_EQ(decoded.straggler_slowdown, setup.straggler_slowdown);

  EXPECT_FALSE(
      mr::JobSetupMsg::Decode("\x01garbage that is not a setup", &decoded)
          .ok());
}

TEST(RemoteCodecTest, TaskAssignRoundTrip) {
  mr::TaskAssignMsg assign;
  assign.task = 12;
  assign.attempt = 2;
  assign.quarantined = true;
  assign.input = std::string("\x00serialized input\xff", 19);
  mr::TaskAssignMsg decoded;
  ASSERT_TRUE(mr::TaskAssignMsg::Decode(assign.Encode(), &decoded).ok());
  EXPECT_EQ(decoded.task, assign.task);
  EXPECT_EQ(decoded.attempt, assign.attempt);
  EXPECT_EQ(decoded.quarantined, assign.quarantined);
  EXPECT_EQ(decoded.input, assign.input);
}

// ------------------------------------------------------------ job registry

TEST(JobRegistryTest, UnknownIdIsNotFound) {
  mr::JobSetupMsg setup;
  setup.job_id = "job-that-was-never-registered";
  auto runner = mr::JobRegistry::Global().Create(setup);
  ASSERT_FALSE(runner.ok());
  EXPECT_EQ(runner.status().code(), StatusCode::kNotFound);
}

TEST(JobRegistryTest, RegisterAllRemoteJobsCoversEveryDriverJob) {
  RegisterAllRemoteJobs();
  std::vector<std::string> ids = mr::JobRegistry::Global().RegisteredIds();
  for (const char* id :
       {"lsh-rho-local", "lsh-rho-aggregate", "lsh-delta-local",
        "lsh-delta-aggregate", "basic-rho-local", "basic-rho-aggregate",
        "basic-delta-local", "basic-delta-aggregate", "eddpc-rho",
        "eddpc-delta-bound", "eddpc-delta-refine", "eddpc-delta-aggregate",
        "choose-dc", "assign-jump", "kmeans-iter"}) {
    bool found = false;
    for (const std::string& have : ids) found = found || have == id;
    EXPECT_TRUE(found) << "missing registered job " << id;
  }
}

TEST(JobRegistryTest, RegisteredFactoryRejectsMalformedCtx) {
  RegisterAllRemoteJobs();
  mr::JobSetupMsg setup;
  setup.job_id = "lsh-rho-local";
  setup.ctx = "definitely not an encoded LshJobsCtx";
  EXPECT_FALSE(mr::JobRegistry::Global().Create(setup).ok());
}

// ------------------------------------------------- multi-host bit-identity

enum class Mode { kInProc, kForkPipe, kForkTcp, kRemote };

struct ModeResult {
  std::vector<int> assignment;
  double dc = 0.0;
  uint64_t tasks_reassigned = 0;
};

// Runs the full pipeline for `algo` under `mode` and returns the
// assignment. Remote mode binds a pool on an ephemeral port, execs
// `workers` ddp_worker processes against it (the first gets
// `crash_task` >= 0 as --chaos-crash-task), and reaps them afterwards.
Result<ModeResult> RunPipeline(const std::string& algo, const Dataset& ds,
                               Mode mode, uint64_t budget = 0,
                               size_t workers = 2, int64_t crash_task = -1) {
  DdpOptions options;
  options.selector = PeakSelector::TopK(12);
  options.use_mr_assignment = true;  // assign-jump rounds go remote too
  options.mr.num_workers = 2;
  options.mr.memory_budget_bytes = budget;
  switch (mode) {
    case Mode::kInProc:
      break;
    case Mode::kForkPipe:
      options.mr.exec_mode = mr::ExecMode::kFork;
      break;
    case Mode::kForkTcp:
      options.mr.exec_mode = mr::ExecMode::kFork;
      options.mr.transport = mr::Transport::kTcp;
      break;
    case Mode::kRemote:
      options.mr.exec_mode = mr::ExecMode::kRemote;
      break;
  }

  std::unique_ptr<mr::RemoteWorkerPool> pool;
  std::vector<int64_t> pids;
  if (mode == Mode::kRemote) {
    DDP_ASSIGN_OR_RETURN(pool, mr::RemoteWorkerPool::Listen("127.0.0.1", 0));
    options.mr.remote_pool = pool.get();
    const std::string endpoint =
        pool->host() + ":" + std::to_string(pool->port());
    for (size_t i = 0; i < workers; ++i) {
      std::vector<std::string> args = {"--connect", endpoint};
      if (i == 0 && crash_task >= 0) {
        args.push_back("--chaos-crash-task");
        args.push_back(std::to_string(crash_task));
      }
      DDP_ASSIGN_OR_RETURN(int64_t pid,
                           mr::SpawnWorkerProcess(DDP_WORKER_BIN, args));
      pids.push_back(pid);
    }
  }

  LshDdp::Params lsh_params;
  LshDdp lsh_algo(lsh_params);
  BasicDdp::Params basic_params;
  basic_params.block_size = 100;
  BasicDdp basic_algo(basic_params);
  Eddpc::Params eddpc_params;
  Eddpc eddpc_algo(eddpc_params);
  DistributedDpAlgorithm* algorithm = nullptr;
  if (algo == "lsh") algorithm = &lsh_algo;
  if (algo == "basic") algorithm = &basic_algo;
  if (algo == "eddpc") algorithm = &eddpc_algo;

  Result<DdpRunResult> run = RunDistributedDp(algorithm, ds, options);
  if (pool != nullptr) {
    pool->Shutdown();
    for (int64_t pid : pids) mr::WaitWorkerProcess(pid);
  }
  DDP_RETURN_NOT_OK(run.status());
  ModeResult out;
  out.assignment = std::move(run->clusters.assignment);
  out.dc = run->dc;
  for (const mr::JobCounters& j : run->stats.jobs) {
    out.tasks_reassigned += j.tasks_reassigned;
  }
  return out;
}

class RemoteBitIdentityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RemoteBitIdentityTest, FourModesAgreeByteForByte) {
  if (!mr::ForkExecutionSupported()) {
    GTEST_SKIP() << "forked/exec'd workers unsupported in this build";
  }
  const std::string algo = GetParam();
  Dataset ds = std::move(gen::S2Like(7, 400)).ValueOrDie();

  auto inproc = RunPipeline(algo, ds, Mode::kInProc);
  ASSERT_TRUE(inproc.ok()) << inproc.status().ToString();
  auto fork_pipe = RunPipeline(algo, ds, Mode::kForkPipe);
  ASSERT_TRUE(fork_pipe.ok()) << fork_pipe.status().ToString();
  auto fork_tcp = RunPipeline(algo, ds, Mode::kForkTcp);
  ASSERT_TRUE(fork_tcp.ok()) << fork_tcp.status().ToString();
  auto remote = RunPipeline(algo, ds, Mode::kRemote);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  EXPECT_EQ(inproc->dc, remote->dc);
  EXPECT_EQ(inproc->assignment, fork_pipe->assignment);
  EXPECT_EQ(inproc->assignment, fork_tcp->assignment);
  EXPECT_EQ(inproc->assignment, remote->assignment);
}

TEST_P(RemoteBitIdentityTest, SurvivesWorkerDeathMidShuffle) {
  if (!mr::ForkExecutionSupported()) {
    GTEST_SKIP() << "forked/exec'd workers unsupported in this build";
  }
  const std::string algo = GetParam();
  Dataset ds = std::move(gen::S2Like(7, 400)).ValueOrDie();

  auto inproc = RunPipeline(algo, ds, Mode::kInProc);
  ASSERT_TRUE(inproc.ok()) << inproc.status().ToString();
  // Worker 0 SIGKILLs itself mid-shuffle while serving its second task; the
  // job must finish on the survivor, bit-identically, with the dead
  // worker's in-flight task reassigned.
  auto remote = RunPipeline(algo, ds, Mode::kRemote, /*budget=*/0,
                            /*workers=*/2, /*crash_task=*/1);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(inproc->assignment, remote->assignment);
  EXPECT_GT(remote->tasks_reassigned, 0u);
}

TEST_P(RemoteBitIdentityTest, FourKiBSpillBudgetStaysIdentical) {
  if (!mr::ForkExecutionSupported()) {
    GTEST_SKIP() << "forked/exec'd workers unsupported in this build";
  }
  const std::string algo = GetParam();
  Dataset ds = std::move(gen::S2Like(7, 400)).ValueOrDie();

  auto inproc = RunPipeline(algo, ds, Mode::kInProc, /*budget=*/4096);
  ASSERT_TRUE(inproc.ok()) << inproc.status().ToString();
  auto remote = RunPipeline(algo, ds, Mode::kRemote, /*budget=*/4096);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(inproc->assignment, remote->assignment);
}

INSTANTIATE_TEST_SUITE_P(AllDrivers, RemoteBitIdentityTest,
                         ::testing::Values("lsh", "basic", "eddpc"));

}  // namespace
}  // namespace ddp

// Out-of-core execution tests: the spill/merge subsystem (mapreduce/spill.h)
// and its RunJob integration. The load-bearing property is the determinism
// contract — every memory budget, including ones forcing many spill runs per
// map task, must produce byte-for-byte the output of the all-in-memory path,
// with and without chaos (poisoned records, task retries, checkpoint
// kill/resume) layered on top. Spill files must also never leak: the spill
// dir is empty again once a job (or a failed attempt) is done with it.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataset/generators.h"
#include "ddp/basic_ddp.h"
#include "ddp/driver.h"
#include "ddp/lsh_ddp.h"
#include "mapreduce/checkpoint.h"
#include "mapreduce/mapreduce.h"
#include "mapreduce/spill.h"

namespace ddp {
namespace mr {
namespace {

namespace fs = std::filesystem;

class SpillDirGuard {
 public:
  explicit SpillDirGuard(const std::string& name)
      : dir_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(dir_);
  }
  ~SpillDirGuard() { fs::remove_all(dir_); }

  const std::string& dir() const { return dir_; }

  size_t FileCount() const {
    if (!fs::exists(dir_)) return 0;
    size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      (void)entry;
      ++n;
    }
    return n;
  }

 private:
  std::string dir_;
};

// ---------------------------------------------------------------------------
// SpillFile writer/reader round trip.

TEST(SpillFileTest, RoundTripsMultipleRuns) {
  SpillDirGuard guard("ddp_spill_file_test");
  auto writer = SpillFileWriter::Create(guard.dir(), "roundtrip.spill");
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  const std::vector<std::vector<std::string>> runs = {
      {"alpha", "beta"}, {"gamma"}, {"d", "ee", "fff", "gggg"}};
  std::vector<SpillExtent> extents;
  for (const auto& run : runs) {
    (*writer)->BeginRun();
    for (const std::string& payload : run) {
      std::string frame;
      BufferWriter w(&frame);
      w.PutVarint64(payload.size());
      w.PutRaw(payload.data(), payload.size());
      (*writer)->Append(frame.data(), frame.size());
    }
    auto extent = (*writer)->EndRun();
    ASSERT_TRUE(extent.ok());
    extents.push_back(*extent);
  }
  ASSERT_TRUE((*writer)->Close().ok());
  auto handle = (*writer)->handle();

  for (size_t r = 0; r < runs.size(); ++r) {
    SpillSegmentReader reader(handle, extents[r].offset, extents[r].length);
    for (const std::string& expected : runs[r]) {
      std::string_view payload;
      bool eof = true;
      ASSERT_TRUE(reader.NextFrame(&payload, &eof).ok());
      ASSERT_FALSE(eof);
      EXPECT_EQ(payload, expected);
    }
    std::string_view payload;
    bool eof = false;
    ASSERT_TRUE(reader.NextFrame(&payload, &eof).ok());
    EXPECT_TRUE(eof);
  }
}

TEST(SpillFileTest, CorruptionFailsTheCrcCheck) {
  SpillDirGuard guard("ddp_spill_crc_test");
  auto writer = SpillFileWriter::Create(guard.dir(), "corrupt.spill");
  ASSERT_TRUE(writer.ok());
  (*writer)->BeginRun();
  std::string frame;
  BufferWriter w(&frame);
  const std::string payload(100, 'x');
  w.PutVarint64(payload.size());
  w.PutRaw(payload.data(), payload.size());
  (*writer)->Append(frame.data(), frame.size());
  auto extent = (*writer)->EndRun();
  ASSERT_TRUE(extent.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  auto handle = (*writer)->handle();

  // Flip one payload byte in the middle of the run.
  {
    std::fstream f(handle->path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(extent->offset + 50));
    f.put('y');
  }

  SpillSegmentReader reader(handle, extent->offset, extent->length);
  std::string_view out;
  bool eof = false;
  Status st = reader.NextFrame(&out, &eof);  // frame still parses...
  while (st.ok() && !eof) st = reader.NextFrame(&out, &eof);
  ASSERT_FALSE(st.ok());  // ...but the end-of-run CRC check rejects the run
  EXPECT_TRUE(st.IsIoError());
  EXPECT_NE(st.message().find("CRC"), std::string::npos) << st.ToString();
}

// ---------------------------------------------------------------------------
// RunJob: bit-identical output across budgets, spill accounting, no leaks.

// A job with enough skew and volume that small budgets force many runs per
// map task: keys collide across tasks, values vary per record.
JobSpec<uint32_t, uint32_t, uint64_t, std::pair<uint32_t, uint64_t>>
SkewedSumSpec() {
  JobSpec<uint32_t, uint32_t, uint64_t, std::pair<uint32_t, uint64_t>> spec;
  spec.name = "skewed-sum";
  spec.map = [](const uint32_t& i, Emitter<uint32_t, uint64_t>* out) {
    // Each input record emits three pairs; key space is small (collisions)
    // and one hot key takes a third of all records.
    out->Emit(i % 37, i);
    out->Emit(i % 11, i * 2);
    out->Emit(0, i * 3);
  };
  spec.reduce = [](const uint32_t& key, std::span<const uint64_t> values,
                   std::vector<std::pair<uint32_t, uint64_t>>* out) {
    // Order-sensitive fold: detects any change in value order, not just
    // multiset membership.
    uint64_t acc = 0;
    for (uint64_t v : values) acc = acc * 31 + v;
    out->push_back({key, acc});
  };
  return spec;
}

std::vector<uint32_t> SkewedInput(size_t n) {
  std::vector<uint32_t> input(n);
  for (size_t i = 0; i < n; ++i) input[i] = static_cast<uint32_t>(i * 7 + 1);
  return input;
}

TEST(SpillRunJobTest, OutputBitIdenticalAcrossBudgets) {
  SpillDirGuard guard("ddp_spill_runjob_test");
  const std::vector<uint32_t> input = SkewedInput(4000);

  Options base;
  base.num_workers = 2;
  base.num_partitions = 8;
  base.spill_dir = guard.dir();

  JobCounters in_memory_counters;
  auto in_memory = RunJob(SkewedSumSpec(), std::span<const uint32_t>(input),
                          base, &in_memory_counters);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
  EXPECT_EQ(in_memory_counters.spill_files, 0u);
  EXPECT_EQ(in_memory_counters.merge_passes, 0u);

  const size_t num_map_tasks = 8;  // min(4000, 2 workers * 4)
  for (uint64_t budget : {uint64_t{256}, uint64_t{4096}, uint64_t{1} << 20}) {
    Options spilling = base;
    spilling.memory_budget_bytes = budget;
    JobCounters counters;
    auto result = RunJob(SkewedSumSpec(), std::span<const uint32_t>(input),
                         spilling, &counters);
    ASSERT_TRUE(result.ok()) << "budget=" << budget << ": "
                             << result.status().ToString();
    EXPECT_EQ(*result, *in_memory) << "budget=" << budget;
    if (budget <= 4096) {
      if (budget == 256) {
        // The tightest budget must really exercise the external path: at
        // least four spill files (runs) per map task, all merged reduce-side.
        EXPECT_GE(counters.spill_files, 4u * num_map_tasks);
      }
      EXPECT_GT(counters.spill_files, 0u) << "budget=" << budget;
      EXPECT_GT(counters.spilled_bytes, 0u);
      EXPECT_GT(counters.merge_passes, 0u);
      const std::string line = counters.ToString();
      EXPECT_NE(line.find("spilled_bytes="), std::string::npos) << line;
      EXPECT_NE(line.find("merge_passes="), std::string::npos) << line;
    }
    // Every spill file is unlinked once the job is done.
    EXPECT_EQ(guard.FileCount(), 0u) << "budget=" << budget;
  }
}

TEST(SpillRunJobTest, CombinerComposesWithSpilling) {
  SpillDirGuard guard("ddp_spill_combiner_test");
  auto spec = SkewedSumSpec();
  spec.combiner = [](const uint32_t&, std::vector<uint64_t> values) {
    // Identity combiner: value order through the spill path must survive.
    return values;
  };
  const std::vector<uint32_t> input = SkewedInput(2000);

  Options base;
  base.num_workers = 2;
  base.num_partitions = 8;
  base.spill_dir = guard.dir();
  auto in_memory = RunJob(spec, std::span<const uint32_t>(input), base);
  ASSERT_TRUE(in_memory.ok());

  Options spilling = base;
  spilling.memory_budget_bytes = 512;
  JobCounters counters;
  auto result =
      RunJob(spec, std::span<const uint32_t>(input), spilling, &counters);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, *in_memory);
  EXPECT_GT(counters.spill_files, 0u);
}

TEST(SpillRunJobTest, PoisonedRecordInsideSpillRunIsSkipped) {
  SpillDirGuard guard("ddp_spill_poison_test");
  const std::vector<uint32_t> input = SkewedInput(2000);

  Options base;
  base.num_workers = 2;
  base.num_partitions = 8;
  auto clean = RunJob(SkewedSumSpec(), std::span<const uint32_t>(input), base);
  ASSERT_TRUE(clean.ok());

  Options poisoned = base;
  poisoned.spill_dir = guard.dir();
  poisoned.memory_budget_bytes = 512;
  poisoned.skip_bad_records = true;
  poisoned.faults.corruption_rate = 0.5;
  poisoned.faults.seed = 42;
  JobCounters counters;
  auto result = RunJob(SkewedSumSpec(), std::span<const uint32_t>(input),
                       poisoned, &counters);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, *clean);
  EXPECT_GT(counters.skipped_records, 0u);
  EXPECT_GT(counters.spill_files, 0u);
  EXPECT_EQ(guard.FileCount(), 0u);

  // Without skip_bad_records the same poison aborts the job.
  poisoned.skip_bad_records = false;
  auto aborted =
      RunJob(SkewedSumSpec(), std::span<const uint32_t>(input), poisoned);
  EXPECT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.status().IsIoError());
  EXPECT_EQ(guard.FileCount(), 0u);
}

TEST(SpillRunJobTest, TaskRetriesRecreateSpillFilesWithoutLeaking) {
  SpillDirGuard guard("ddp_spill_retry_test");
  const std::vector<uint32_t> input = SkewedInput(2000);

  Options base;
  base.num_workers = 2;
  base.num_partitions = 8;
  auto clean = RunJob(SkewedSumSpec(), std::span<const uint32_t>(input), base);
  ASSERT_TRUE(clean.ok());

  Options flaky = base;
  flaky.spill_dir = guard.dir();
  flaky.memory_budget_bytes = 512;
  flaky.faults.map_failure_rate = 0.4;
  flaky.faults.reduce_failure_rate = 0.3;
  flaky.faults.seed = 7;
  flaky.max_task_attempts = 24;
  JobCounters counters;
  auto result =
      RunJob(SkewedSumSpec(), std::span<const uint32_t>(input), flaky,
             &counters);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, *clean);
  EXPECT_GT(counters.map_task_retries + counters.reduce_task_retries, 0u);
  // Failed attempts' spill files were replaced by their retries' files, and
  // everything is gone when the job finishes.
  EXPECT_EQ(guard.FileCount(), 0u);
}

TEST(SpillRunJobTest, SpeculativeAttemptsShareSpillDirSafely) {
  SpillDirGuard guard("ddp_spill_spec_test");
  const std::vector<uint32_t> input = SkewedInput(2000);

  Options base;
  base.num_workers = 2;
  base.num_partitions = 8;
  auto clean = RunJob(SkewedSumSpec(), std::span<const uint32_t>(input), base);
  ASSERT_TRUE(clean.ok());

  Options spec_opts = base;
  spec_opts.spill_dir = guard.dir();
  spec_opts.memory_budget_bytes = 512;
  spec_opts.speculative_execution = true;
  spec_opts.speculative_multiplier = 1.01;
  spec_opts.speculative_min_completed = 1;
  spec_opts.faults.straggler_rate = 0.3;
  spec_opts.faults.straggler_slowdown = 10.0;
  spec_opts.faults.straggler_min_seconds = 0.02;
  spec_opts.faults.seed = 11;
  auto result =
      RunJob(SkewedSumSpec(), std::span<const uint32_t>(input), spec_opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, *clean);
  EXPECT_EQ(guard.FileCount(), 0u);
}

// ---------------------------------------------------------------------------
// Full DDP pipelines: bit-identical clustering across budgets (the
// acceptance property), counter surfacing, checkpoint resume with spilling.

bool BitIdentical(const DdpRunResult& a, const DdpRunResult& b) {
  return a.dc == b.dc && a.scores.rho == b.scores.rho &&
         a.scores.delta == b.scores.delta &&
         a.scores.upslope == b.scores.upslope &&
         a.clusters.assignment == b.clusters.assignment &&
         a.clusters.peaks == b.clusters.peaks;
}

DdpOptions BaseDdpOptions() {
  DdpOptions o;
  o.mr.num_workers = 2;
  o.mr.num_partitions = 8;
  o.selector = PeakSelector::TopK(5);
  return o;
}

class SpillDdpTest : public ::testing::TestWithParam<const char*> {
 protected:
  static std::unique_ptr<DistributedDpAlgorithm> MakeAlgorithm(
      const std::string& name) {
    if (name == "basic-ddp") {
      BasicDdp::Params p;
      p.block_size = 100;
      return std::make_unique<BasicDdp>(p);
    }
    EXPECT_EQ(name, "lsh-ddp");
    return std::make_unique<LshDdp>();
  }

  Dataset MakeData() {
    auto ds = gen::KddLike(/*seed=*/5, 400);
    EXPECT_TRUE(ds.ok());
    return std::move(ds).value();
  }
};

TEST_P(SpillDdpTest, ClusteringBitIdenticalAcrossBudgets) {
  SpillDirGuard guard(std::string("ddp_spill_ddp_") + GetParam());
  Dataset dataset = MakeData();

  auto baseline_algo = MakeAlgorithm(GetParam());
  auto baseline =
      RunDistributedDp(baseline_algo.get(), dataset, BaseDdpOptions());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (uint64_t budget : {uint64_t{256}, uint64_t{4096}}) {
    DdpOptions options = BaseDdpOptions();
    options.mr.memory_budget_bytes = budget;
    options.mr.spill_dir = guard.dir();
    auto algo = MakeAlgorithm(GetParam());
    auto result = RunDistributedDp(algo.get(), dataset, options);
    ASSERT_TRUE(result.ok())
        << GetParam() << " budget=" << budget << ": "
        << result.status().ToString();
    EXPECT_TRUE(BitIdentical(*baseline, *result))
        << GetParam() << " diverged at budget=" << budget;
    EXPECT_GT(result->stats.TotalSpilledBytes(), 0u) << "budget=" << budget;
    EXPECT_GT(result->stats.TotalMergePasses(), 0u) << "budget=" << budget;
    // The counter line of at least one job must surface the spill numbers.
    const std::string stats = result->stats.ToString();
    EXPECT_NE(stats.find("spilled_bytes="), std::string::npos) << stats;
    EXPECT_NE(stats.find("merge_passes="), std::string::npos) << stats;
    EXPECT_EQ(guard.FileCount(), 0u) << "budget=" << budget;
  }
}

TEST_P(SpillDdpTest, ChaosGauntletUnderSpillingStaysBitIdentical) {
  SpillDirGuard guard(std::string("ddp_spill_chaos_") + GetParam());
  Dataset dataset = MakeData();

  auto baseline_algo = MakeAlgorithm(GetParam());
  auto baseline =
      RunDistributedDp(baseline_algo.get(), dataset, BaseDdpOptions());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  DdpOptions chaos = BaseDdpOptions();
  chaos.mr.memory_budget_bytes = 512;
  chaos.mr.spill_dir = guard.dir();
  chaos.mr.faults.map_failure_rate = 0.25;
  chaos.mr.faults.reduce_failure_rate = 0.25;
  chaos.mr.faults.corruption_rate = 0.1;
  chaos.mr.faults.seed = 20260807;
  chaos.mr.max_task_attempts = 24;
  chaos.mr.skip_bad_records = true;
  auto algo = MakeAlgorithm(GetParam());
  auto result = RunDistributedDp(algo.get(), dataset, chaos);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(BitIdentical(*baseline, *result));
  EXPECT_GT(result->stats.TotalTaskRetries(), 0u);
  EXPECT_GT(result->stats.TotalSkippedRecords(), 0u);
  EXPECT_GT(result->stats.TotalSpilledBytes(), 0u);
  EXPECT_EQ(guard.FileCount(), 0u);
}

TEST_P(SpillDdpTest, KilledDriverResumesWithPopulatedSpillDir) {
  SpillDirGuard guard(std::string("ddp_spill_resume_") + GetParam());
  Dataset dataset = MakeData();

  auto baseline_algo = MakeAlgorithm(GetParam());
  auto baseline =
      RunDistributedDp(baseline_algo.get(), dataset, BaseDdpOptions());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const std::string ckpt_dir =
      (fs::temp_directory_path() /
       (std::string("ddp_spill_ckpt_") + GetParam()))
          .string();
  fs::remove_all(ckpt_dir);
  CheckpointStore store(ckpt_dir);

  DdpOptions resumable = BaseDdpOptions();
  resumable.mr.checkpoint = &store;
  resumable.mr.memory_budget_bytes = 512;
  resumable.mr.spill_dir = guard.dir();

  // Seed the spill dir with a stale file from a "previous crashed run":
  // resume must neither trip over it nor delete it (it is not ours).
  fs::create_directories(guard.dir());
  { std::ofstream(guard.dir() + "/stale-old-run.spill") << "leftover"; }

  store.SetKillAfter(1);
  {
    auto killed_algo = MakeAlgorithm(GetParam());
    auto killed = RunDistributedDp(killed_algo.get(), dataset, resumable);
    ASSERT_FALSE(killed.ok());
    EXPECT_TRUE(killed.status().IsCancelled()) << killed.status().ToString();
  }

  store.SetKillAfter(-1);  // no further kills
  auto resumed_algo = MakeAlgorithm(GetParam());
  auto resumed = RunDistributedDp(resumed_algo.get(), dataset, resumable);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(BitIdentical(*baseline, *resumed));
  EXPECT_GT(resumed->stats.JobsLoadedFromCheckpoint(), 0u);
  // Only the stale file we planted remains.
  EXPECT_EQ(guard.FileCount(), 1u);
  fs::remove_all(ckpt_dir);
}

INSTANTIATE_TEST_SUITE_P(Pipelines, SpillDdpTest,
                         ::testing::Values("lsh-ddp", "basic-ddp"));

}  // namespace
}  // namespace mr
}  // namespace ddp
